#include <gtest/gtest.h>

#include "clients/capability_tests.hpp"
#include "clients/profiles.hpp"

namespace chainchaos::clients {
namespace {

/// The expected Table 9 row for each client, straight from the paper.
struct ExpectedRow {
  ClientKind kind;
  bool order;
  bool redundancy;
  bool aia;
  const char* vp;
  const char* kp;
  const char* kup;
  const char* bp;
  const char* length;  ///< with a probe bound of 24: ">24" stands for ">52"
  bool self_signed_leaf;
};

class Table9Test : public ::testing::TestWithParam<ExpectedRow> {
 protected:
  static CapabilityTester& tester() {
    static CapabilityTester instance(24);  // smaller probe keeps tests fast
    return instance;
  }
};

TEST_P(Table9Test, MatchesPaperRow) {
  const ExpectedRow& expected = GetParam();
  const ClientProfile profile = make_profile(expected.kind);
  const CapabilityRow row = tester().evaluate(profile);

  EXPECT_EQ(row.order_reorganization, expected.order) << profile.name;
  EXPECT_EQ(row.redundancy_elimination, expected.redundancy) << profile.name;
  EXPECT_EQ(row.aia_completion, expected.aia) << profile.name;
  EXPECT_EQ(row.validity_priority, expected.vp) << profile.name;
  EXPECT_EQ(row.kid_priority, expected.kp) << profile.name;
  EXPECT_EQ(row.key_usage_priority, expected.kup) << profile.name;
  EXPECT_EQ(row.basic_constraints_priority, expected.bp) << profile.name;
  EXPECT_EQ(row.path_length, expected.length) << profile.name;
  EXPECT_EQ(row.self_signed_leaf, expected.self_signed_leaf) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllClients, Table9Test,
    ::testing::Values(
        //            kind                    ord  red  aia  vp     kp     kup    bp    len    ssl
        ExpectedRow{ClientKind::kOpenSsl,   true,  true, false, "VP1", "KP1", "-",   "-",  ">24", false},
        ExpectedRow{ClientKind::kGnuTls,    true,  true, false, "-",   "KP1", "-",   "-",  "=16", false},
        ExpectedRow{ClientKind::kMbedTls,   false, true, false, "VP1", "-",   "KUP", "BP", "=10", true},
        ExpectedRow{ClientKind::kCryptoApi, true,  true, true,  "VP2", "KP2", "KUP", "BP", "=13", false},
        ExpectedRow{ClientKind::kChrome,    true,  true, true,  "VP2", "KP2", "KUP", "BP", ">24", false},
        ExpectedRow{ClientKind::kEdge,      true,  true, true,  "VP2", "KP2", "KUP", "BP", "=21", false},
        ExpectedRow{ClientKind::kSafari,    true,  true, true,  "VP2", "KP1", "KUP", "BP", ">24", true},
        ExpectedRow{ClientKind::kFirefox,   true,  true, false, "VP1", "-",   "KUP", "BP", "=8",  false}),
    [](const ::testing::TestParamInfo<ExpectedRow>& info) {
      return make_profile(info.param.kind).name == "Microsoft Edge"
                 ? std::string("MicrosoftEdge")
                 : make_profile(info.param.kind).name;
    });

TEST(ProfilesTest, RosterShapes) {
  EXPECT_EQ(all_profiles().size(), 8u);
  EXPECT_EQ(library_profiles().size(), 4u);
  EXPECT_EQ(browser_profiles().size(), 4u);
  for (const ClientProfile& p : library_profiles()) {
    EXPECT_FALSE(p.is_browser) << p.name;
  }
  for (const ClientProfile& p : browser_profiles()) {
    EXPECT_TRUE(p.is_browser) << p.name;
  }
}

TEST(ProfilesTest, DistinctNames) {
  std::vector<std::string> names;
  for (const ClientProfile& p : all_profiles()) names.push_back(p.name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(ProfilesTest, GnuTlsCapsInputListNotDepth) {
  const ClientProfile gnutls = make_profile(ClientKind::kGnuTls);
  EXPECT_EQ(gnutls.policy.max_input_list, 16);
  EXPECT_EQ(gnutls.policy.max_constructed_depth, 0);
}

TEST(ProfilesTest, OnlyMbedTlsLacksReordering) {
  for (const ClientProfile& p : all_profiles()) {
    EXPECT_EQ(p.policy.reorder, p.kind != ClientKind::kMbedTls) << p.name;
  }
}

TEST(ProfilesTest, BacktrackingSplit) {
  // Finding I-3: OpenSSL/GnuTLS/MbedTLS lack backtracking.
  for (const ClientProfile& p : all_profiles()) {
    const bool expected = p.kind != ClientKind::kOpenSsl &&
                          p.kind != ClientKind::kGnuTls &&
                          p.kind != ClientKind::kMbedTls;
    EXPECT_EQ(p.policy.backtracking, expected) << p.name;
  }
}

TEST(CapabilityTesterTest, FirefoxCacheCompensatesForAia) {
  CapabilityTester tester(12);
  const ClientProfile firefox = make_profile(ClientKind::kFirefox);

  // Cold: no AIA, empty cache -> failure.
  EXPECT_FALSE(tester.test_aia_completion(firefox, nullptr));

  // Warm: the missing intermediate is in the browsing cache.
  pathbuild::IntermediateCache cache;
  cache.remember(tester.aia_missing_intermediate());
  EXPECT_TRUE(tester.test_aia_completion(firefox, &cache));
}

}  // namespace
}  // namespace chainchaos::clients
