// Service throughput bench: requests/sec of the chaind daemon over real
// loopback sockets at 1/4/8 workers, result cache on vs off.
//
// The workload is repeat-heavy by design — a handful of distinct chains
// queried over and over from 8 concurrent keep-alive clients — which is
// the corpus-shaped traffic the sharded LRU cache exists for (served
// chains repeat heavily across the Top 1M; see DESIGN.md §5.9). The
// cache-on rows should therefore show both a large hit ratio and a
// correspondingly higher request rate; the bench fails if cache-on and
// cache-off ever disagree on a response body.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "report/table.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "x509/builder.hpp"

using namespace chainchaos;

namespace {

/// Builds `count` distinct leaf+intermediate+root PEM chains.
std::vector<std::string> make_chains(std::size_t count) {
  std::vector<std::string> chains;
  chains.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string tag = "bench-" + std::to_string(i);
    const x509::SigningIdentity root_id =
        x509::make_identity(asn1::Name::make(tag + " Root"));
    const x509::SigningIdentity inter_id =
        x509::make_identity(asn1::Name::make(tag + " Inter"));
    x509::CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    const x509::CertPtr root = rb.self_sign(root_id.keys);
    x509::CertificateBuilder ib;
    ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
    const x509::CertPtr inter = ib.sign(root_id);
    x509::CertificateBuilder lb;
    lb.as_leaf(tag + ".example");
    const x509::CertPtr leaf = lb.sign(inter_id);
    chains.push_back(x509::to_pem(*leaf) + x509::to_pem(*inter) +
                     x509::to_pem(*root));
  }
  return chains;
}

struct RunResult {
  double requests_per_second = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t errors = 0;
  std::set<std::string> bodies;  ///< distinct response bodies seen
};

RunResult run_load(unsigned workers, bool cache_on,
                   const std::vector<std::string>& chains,
                   unsigned clients, unsigned requests_per_client) {
  service::ServerConfig config;
  config.workers = workers;
  config.queue_capacity = 256;
  config.cache_capacity = cache_on ? 4096 : 0;
  service::Server server(config);
  const auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "bench: server failed to start: %s\n",
                 port.error().to_string().c_str());
    std::exit(1);
  }

  RunResult result;
  std::vector<std::set<std::string>> per_client_bodies(clients);
  std::atomic<std::uint64_t> errors{0};

  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::Client client(port.value());
      for (unsigned r = 0; r < requests_per_client; ++r) {
        const std::string& chain = chains[(c + r) % chains.size()];
        const auto response = client.analyze(chain, "bench.example");
        if (!response.ok() || response.value().status != 200) {
          errors.fetch_add(1);
          continue;
        }
        per_client_bodies[c].insert(to_string(response.value().body));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  const std::uint64_t total =
      static_cast<std::uint64_t>(clients) * requests_per_client;
  result.requests_per_second = elapsed > 0 ? total / elapsed : 0.0;
  result.hit_ratio = server.cache_stats().hit_ratio();
  result.errors = errors.load();
  for (const auto& bodies : per_client_bodies) {
    result.bodies.insert(bodies.begin(), bodies.end());
  }
  server.stop();
  return result;
}

}  // namespace

int main() {
  unsigned requests_per_client = 200;
  if (const char* env = std::getenv("CHAINCHAOS_REQUESTS")) {
    requests_per_client = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  constexpr unsigned kClients = 8;
  constexpr std::size_t kDistinctChains = 4;

  std::printf("[load] %u clients x %u requests, %zu distinct chains\n",
              kClients, requests_per_client, kDistinctChains);
  const std::vector<std::string> chains = make_chains(kDistinctChains);

  report::Table table("chaind throughput: 8 keep-alive clients, loopback");
  table.header({"workers", "cache", "req/sec", "hit ratio", "errors"});

  char buf[64];
  bool ok = true;
  std::set<std::string> all_bodies;
  for (const unsigned workers : {1u, 4u, 8u}) {
    for (const bool cache_on : {false, true}) {
      const RunResult run = run_load(workers, cache_on, chains, kClients,
                                     requests_per_client);
      std::snprintf(buf, sizeof buf, "%.0f", run.requests_per_second);
      std::string rate = buf;
      std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * run.hit_ratio);
      table.row({std::to_string(workers), cache_on ? "on" : "off", rate,
                 cache_on ? buf : "-", std::to_string(run.errors)});
      if (run.errors != 0) ok = false;
      all_bodies.insert(run.bodies.begin(), run.bodies.end());
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Every configuration must agree byte-for-byte: one body per chain.
  if (all_bodies.size() != kDistinctChains) {
    std::printf("\nFAIL: %zu distinct response bodies for %zu chains — "
                "cache or concurrency changed the output\n",
                all_bodies.size(), kDistinctChains);
    ok = false;
  } else {
    std::printf("\nresponses byte-identical across workers and cache modes "
                "(%zu bodies for %zu chains)\n",
                all_bodies.size(), kDistinctChains);
  }
  return ok ? 0 : 1;
}
