// Corpus-wide lint sweeps on the sharded engine.
//
// The sweep rides engine::run(): the analyzer produces each record's
// ComplianceReport (accounted into the usual compliance tally), the
// per-record hook lints the chain against that same report, and findings
// are accumulated as named counters in the worker's ShardTally. Counter
// merging is a per-key sum, so the engine's determinism guarantee —
// byte-identical results at any thread count — extends to every per-rule
// tally here.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "report/table.hpp"

namespace chainchaos::lint {

struct CorpusLintRequest {
  /// Records to lint (required unless `source` is set; must outlive the
  /// run).
  const std::vector<dataset::DomainRecord>* records = nullptr;

  /// Alternative record supply, e.g. a corpusio::PackedRecordSource over
  /// a memory-mapped corpus file. Wins over `records` when set.
  const engine::RecordSource* source = nullptr;

  engine::ShardOptions shards;

  /// Produces the ComplianceReport the chain rules read (required).
  const chain::ComplianceAnalyzer* analyzer = nullptr;

  LintOptions options;
};

/// Merged per-rule tallies for one sweep.
struct CorpusLintSummary {
  std::uint64_t chains = 0;               ///< records linted
  std::uint64_t chains_with_findings = 0; ///< ≥1 finding of any severity
  std::uint64_t findings = 0;

  std::map<std::string, std::uint64_t> findings_by_rule;
  std::map<std::string, std::uint64_t> chains_by_rule;  ///< ≥1 finding
  std::array<std::uint64_t, kSeverityCount> findings_by_severity{};

  unsigned threads_used = 0;
  double elapsed_seconds = 0.0;

  bool operator==(const CorpusLintSummary&) const = default;
};

/// Runs the sweep; deterministic for any thread count.
CorpusLintSummary lint_corpus(const CorpusLintRequest& request);

/// Per-rule breakdown table: rule, severity, citation, finding and chain
/// counts (chains as a share of the sweep).
report::Table summary_table(const CorpusLintSummary& summary);

/// Machine-readable rendering of the summary (stable key order).
std::string summary_json(const CorpusLintSummary& summary);

}  // namespace chainchaos::lint
