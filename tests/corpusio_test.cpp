// Packed corpus store (DESIGN.md §5.14): round-trip fidelity, sweep
// byte-identity RAM vs mmap, and hostile-file rejection.
//
// The corruption tests patch real packed files byte-by-byte — bad
// magic, unknown version, truncation, index entries pointing past EOF
// or over each other, flipped data bytes — and assert each produces its
// typed corpusio.* error. Under ASan/UBSan these double as proof that
// no malformed input reaches undefined behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>

#include "chain/analyzer.hpp"
#include "corpusio/reader.hpp"
#include "corpusio/source.hpp"
#include "corpusio/writer.hpp"
#include "dataset/corpus.hpp"
#include "engine/engine.hpp"

namespace chainchaos {
namespace {

dataset::Corpus& corpus() {
  static dataset::Corpus* instance = [] {
    dataset::CorpusConfig config;
    config.domain_count = 150;
    return new dataset::Corpus(std::move(config));
  }();
  return *instance;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Packs the shared corpus once; every test reads this file (the
/// corruption tests copy it first).
const std::string& packed_path() {
  static const std::string path = [] {
    const std::string p = temp_path("corpusio_test.chc");
    auto packed = corpusio::pack_corpus(corpus(), p);
    EXPECT_TRUE(packed.ok());
    return p;
  }();
  return path;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, BytesView bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
}

/// Copies the good file, applies `mutate`, returns the error code
/// CorpusReader::open produced (empty string = opened fine).
std::string open_error_after(const char* name,
                             const std::function<void(Bytes&)>& mutate) {
  Bytes bytes = read_file(packed_path());
  mutate(bytes);
  const std::string path = temp_path(name);
  write_file(path, bytes);
  auto opened = corpusio::CorpusReader::open(path);
  std::remove(path.c_str());
  return opened.ok() ? std::string() : opened.error().code;
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(CorpusIo, RoundTripPreservesEveryRecord) {
  auto opened = corpusio::CorpusReader::open(packed_path());
  ASSERT_TRUE(opened.ok()) << opened.error().to_string();
  const corpusio::CorpusReader& reader = *opened.value();
  ASSERT_EQ(reader.size(), corpus().records().size());
  EXPECT_EQ(reader.header().seed, corpus().config().seed);
  EXPECT_EQ(reader.header().domain_count, corpus().config().domain_count);
  EXPECT_TRUE(reader.header().include_exemplars());

  for (std::size_t i = 0; i < reader.size(); ++i) {
    auto decoded = reader.decode_record(i);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    const dataset::DomainRecord& got = decoded.value();
    const dataset::DomainRecord& want = corpus().records()[i];
    EXPECT_EQ(got.observation.domain, want.observation.domain);
    EXPECT_EQ(got.observation.ca_name, want.observation.ca_name);
    EXPECT_EQ(got.observation.server_software,
              want.observation.server_software);
    EXPECT_EQ(got.primary_defect, want.primary_defect);
    EXPECT_EQ(got.leaf_defect, want.leaf_defect);
    EXPECT_EQ(got.root_included, want.root_included);
    EXPECT_EQ(got.rare_hierarchy, want.rare_hierarchy);
    EXPECT_EQ(got.akidless_terminal, want.akidless_terminal);
    EXPECT_EQ(got.exclusive_store_domain, want.exclusive_store_domain);
    EXPECT_EQ(got.missing_count, want.missing_count);
    EXPECT_EQ(got.exemplar, want.exemplar);
    EXPECT_EQ(got.exemplar_name, want.exemplar_name);
    ASSERT_EQ(got.observation.certificates.size(),
              want.observation.certificates.size());
    for (std::size_t c = 0; c < got.observation.certificates.size(); ++c) {
      EXPECT_TRUE(equal(got.observation.certificates[c]->der,
                        want.observation.certificates[c]->der));
    }

    // The index label summary matches the decoded record.
    const corpusio::IndexEntry entry = reader.index_entry(i);
    EXPECT_EQ(entry.primary_defect,
              static_cast<std::uint8_t>(want.primary_defect));
    EXPECT_EQ(entry.cert_count, want.observation.certificates.size());
  }
  EXPECT_TRUE(reader.verify().ok());
}

TEST(CorpusIo, EnvironmentBlockCarriesTheSweepEnvironment) {
  auto opened = corpusio::CorpusReader::open(packed_path());
  ASSERT_TRUE(opened.ok());
  auto env = opened.value()->environment();
  ASSERT_TRUE(env.ok()) << env.error().to_string();
  EXPECT_EQ(env.value().core_roots.size(), corpus().zoo().core_roots().size());
  EXPECT_EQ(env.value().exclusive_roots.size(),
            corpus().zoo().exclusive_roots().size());
  const auto want_aia = corpus().aia().snapshot_entries();
  ASSERT_EQ(env.value().aia_entries.size(), want_aia.size());
  for (std::size_t i = 0; i < want_aia.size(); ++i) {
    EXPECT_EQ(env.value().aia_entries[i].uri, want_aia[i].uri);
    EXPECT_EQ(env.value().aia_entries[i].unreachable, want_aia[i].unreachable);
    EXPECT_EQ(env.value().aia_entries[i].cert != nullptr,
              want_aia[i].cert != nullptr);
  }
}

TEST(CorpusIo, ReplicateMultipliesTheRecordRange) {
  const std::string path = temp_path("corpusio_replicate.chc");
  ASSERT_TRUE(corpusio::pack_corpus(corpus(), path, 3).ok());
  auto opened = corpusio::CorpusReader::open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value()->size(), corpus().records().size() * 3);
  // Replica of record 0 at one range-length offset decodes identically.
  auto first = opened.value()->decode_record(0);
  auto replica = opened.value()->decode_record(corpus().records().size());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(first.value().observation.domain,
            replica.value().observation.domain);
  EXPECT_TRUE(opened.value()->verify().ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sweep byte-identity
// ---------------------------------------------------------------------------

engine::AnalysisResult run_ram(unsigned threads) {
  chain::CompletenessOptions options;
  options.store = &corpus().stores().union_store;
  options.aia = &corpus().aia();
  const chain::ComplianceAnalyzer analyzer(options);
  engine::AnalysisRequest request;
  request.records = &corpus().records();
  request.shards.threads = threads;
  request.analyzer = &analyzer;
  return engine::run(request);
}

TEST(CorpusIo, PackedSweepMatchesRamSweepAtAnyThreadCount) {
  auto packed = corpusio::PackedCorpus::open(packed_path());
  ASSERT_TRUE(packed.ok()) << packed.error().to_string();

  chain::CompletenessOptions options;
  options.store = &packed.value()->stores().union_store;
  options.aia = &packed.value()->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  const engine::AnalysisResult want = run_ram(1);
  for (const unsigned threads : {1u, 8u}) {
    const corpusio::PackedRecordSource source(&packed.value()->reader());
    engine::AnalysisRequest request;
    request.source = &source;
    request.shards.threads = threads;
    request.analyzer = &analyzer;
    const engine::AnalysisResult got = engine::run(request);
    EXPECT_EQ(source.decode_errors(), 0u);
    EXPECT_GT(source.bytes_visited(), 0u);
    EXPECT_EQ(got.records_processed, want.records_processed);
    EXPECT_EQ(got.tally, want.tally) << threads << " threads";
  }
}

TEST(CorpusIo, VectorSourceIsEquivalentToDirectRecords) {
  chain::CompletenessOptions options;
  options.store = &corpus().stores().union_store;
  options.aia = &corpus().aia();
  const chain::ComplianceAnalyzer analyzer(options);

  const engine::VectorRecordSource source(&corpus().records());
  engine::AnalysisRequest request;
  request.source = &source;
  request.shards.threads = 2;
  request.analyzer = &analyzer;
  const engine::AnalysisResult got = engine::run(request);
  const engine::AnalysisResult want = run_ram(2);
  EXPECT_EQ(got.records_processed, want.records_processed);
  EXPECT_EQ(got.tally, want.tally);
}

// ---------------------------------------------------------------------------
// Hostile files: every corruption is a typed error, never UB
// ---------------------------------------------------------------------------

TEST(CorpusIo, RejectsBadMagic) {
  EXPECT_EQ(open_error_after("bad_magic.chc",
                             [](Bytes& b) { b[0] = 'X'; }),
            "corpusio.bad_magic");
}

TEST(CorpusIo, RejectsUnsupportedVersion) {
  EXPECT_EQ(open_error_after("bad_version.chc",
                             [](Bytes& b) { b[8] = 99; }),
            "corpusio.unsupported_version");
}

TEST(CorpusIo, RejectsFilesSmallerThanTheHeader) {
  EXPECT_EQ(open_error_after("tiny.chc",
                             [](Bytes& b) { b.resize(50); }),
            "corpusio.truncated");
  EXPECT_EQ(open_error_after("empty.chc", [](Bytes& b) { b.clear(); }),
            "corpusio.truncated");
}

TEST(CorpusIo, RejectsWrappedSectionLayout) {
  // A header whose section sums wrap mod 2^64 back onto EOF: adding
  // 2^63 to data_bytes, env_offset, index_offset and index_bytes keeps
  // every pairwise equality true modulo 2^64 (index_offset+index_bytes
  // wraps to exactly file size), and record_count grows by 2^58 so the
  // index size still "matches" record_count * 32. The index would then
  // sit 2^63 bytes past EOF; open() must reject the header instead of
  // ever forming that pointer.
  const auto add_top_bit = [](Bytes& b, std::size_t off) {
    b[off + 7] ^= 0x80;  // += 2^63 on a little-endian u64 header field
  };
  EXPECT_EQ(open_error_after("wrapped.chc",
                             [&add_top_bit](Bytes& b) {
                               add_top_bit(b, 32);  // data_bytes
                               add_top_bit(b, 40);  // env_offset
                               add_top_bit(b, 56);  // index_offset
                               add_top_bit(b, 64);  // index_bytes
                               b[16 + 7] += 0x04;   // record_count += 2^58
                             }),
            "corpusio.truncated");
}

TEST(CorpusIo, RejectsTruncatedIndex) {
  // Chopping the tail off the file shears the index; the section
  // layout no longer covers the file.
  EXPECT_EQ(open_error_after("trunc_index.chc",
                             [](Bytes& b) { b.resize(b.size() - 16); }),
            "corpusio.truncated");
}

TEST(CorpusIo, RejectsRecordLengthPastSection) {
  auto opened = corpusio::CorpusReader::open(packed_path());
  ASSERT_TRUE(opened.ok());
  const std::size_t index_offset =
      static_cast<std::size_t>(opened.value()->header().index_offset);
  const std::size_t last =
      index_offset + (opened.value()->size() - 1) * corpusio::kIndexEntryBytes;
  // The length field sits 8 bytes into the entry; 0xffffffff runs far
  // past the data section.
  EXPECT_EQ(open_error_after("bad_length.chc",
                             [last](Bytes& b) {
                               b[last + 8] = 0xff;
                               b[last + 9] = 0xff;
                               b[last + 10] = 0xff;
                               b[last + 11] = 0xff;
                             }),
            "corpusio.bad_index");
}

TEST(CorpusIo, RejectsOverlappingRecords) {
  auto opened = corpusio::CorpusReader::open(packed_path());
  ASSERT_TRUE(opened.ok());
  const std::size_t index_offset =
      static_cast<std::size_t>(opened.value()->header().index_offset);
  const corpusio::IndexEntry first = opened.value()->index_entry(0);
  // Point record 1 back at record 0's offset.
  EXPECT_EQ(open_error_after(
                "overlap.chc",
                [index_offset, first](Bytes& b) {
                  const std::size_t second =
                      index_offset + corpusio::kIndexEntryBytes;
                  for (int i = 0; i < 8; ++i) {
                    b[second + i] =
                        static_cast<std::uint8_t>(first.offset >> (8 * i));
                  }
                }),
            "corpusio.overlap");
}

TEST(CorpusIo, RejectsZeroRecordFiles) {
  const std::string path = temp_path("zero_records.chc");
  corpusio::CorpusWriter writer;
  ASSERT_TRUE(writer.open(path, corpusio::PackOptions{}).ok());
  ASSERT_TRUE(writer.finish().ok());
  auto opened = corpusio::CorpusReader::open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, "corpusio.empty");
  std::remove(path.c_str());
}

TEST(CorpusIo, DetectsFlippedDataBytes) {
  // Flip one byte inside record 0's certificate data: open() still
  // succeeds (it never reads the data section), but decoding the record
  // and whole-file verification both report the checksum mismatch.
  Bytes bytes = read_file(packed_path());
  bytes[corpusio::kHeaderBytes + 60] ^= 0x40;
  const std::string path = temp_path("bitrot.chc");
  write_file(path, bytes);
  auto opened = corpusio::CorpusReader::open(path);
  ASSERT_TRUE(opened.ok()) << opened.error().to_string();
  auto decoded = opened.value()->decode_record(0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "corpusio.checksum_mismatch");
  auto verified = opened.value()->verify();
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.error().code, "corpusio.checksum_mismatch");
  // A sweep over the damaged file skips the record and counts it.
  const corpusio::PackedRecordSource source(opened.value().get());
  source.visit(0, 1, [](const dataset::DomainRecord&, std::size_t) {
    FAIL() << "corrupt record must not be visited";
  });
  EXPECT_EQ(source.decode_errors(), 1u);
  std::remove(path.c_str());
}

TEST(CorpusIo, RejectsOutOfRangeMissingCount) {
  auto opened = corpusio::CorpusReader::open(packed_path());
  ASSERT_TRUE(opened.ok());
  const corpusio::IndexEntry entry = opened.value()->index_entry(0);
  const std::size_t index_offset =
      static_cast<std::size_t>(opened.value()->header().index_offset);

  Bytes bytes = read_file(packed_path());
  // missing_count sits 8 bytes into the record (u32 label_bytes + 4
  // fixed label bytes). Set it to 0xffffffff — above INT_MAX — then
  // re-seal the record checksum in both the trailer and the index
  // entry, so only the range check can reject the record.
  const std::size_t base = static_cast<std::size_t>(entry.offset);
  for (int i = 0; i < 4; ++i) bytes[base + 8 + i] = 0xff;
  const std::uint64_t checksum =
      corpusio::fnv1a64(BytesView(bytes.data() + base, entry.length - 8));
  for (int i = 0; i < 8; ++i) {
    const auto byte = static_cast<std::uint8_t>(checksum >> (8 * i));
    bytes[base + entry.length - 8 + i] = byte;  // record trailer
    bytes[index_offset + 16 + i] = byte;        // index entry copy
  }
  const std::string path = temp_path("big_missing.chc");
  write_file(path, bytes);
  auto reopened = corpusio::CorpusReader::open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  auto decoded = reopened.value()->decode_record(0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, "corpusio.bad_index");
  std::remove(path.c_str());
}

TEST(CorpusIo, WriterRejectsOversizedAiaUri) {
  const std::string path = temp_path("big_aia.chc");
  corpusio::CorpusWriter writer;
  ASSERT_TRUE(writer.open(path, corpusio::PackOptions{}).ok());
  auto added =
      writer.add_aia_entry(std::string(70000, 'a'), nullptr, true);
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.error().code, "corpusio.oversized_label");
  // The rejected entry left no partial bytes behind: a small entry
  // still round-trips.
  ASSERT_TRUE(
      writer.add_aia_entry("http://aia.example/ca.der", nullptr, true).ok());
  std::remove(path.c_str());
}

TEST(CorpusIo, WriterRefusesRecordsAfterEnvironment) {
  const std::string path = temp_path("order.chc");
  corpusio::CorpusWriter writer;
  ASSERT_TRUE(writer.open(path, corpusio::PackOptions{}).ok());
  writer.add_core_root(corpus().zoo().core_roots().front());
  auto added = writer.add_record(corpus().records().front());
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.error().code, "corpusio.io");
  std::remove(path.c_str());
}

TEST(CorpusIo, MissingFileIsAnIoError) {
  auto opened = corpusio::CorpusReader::open("/no/such/corpus.chc");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, "corpusio.io");
}

}  // namespace
}  // namespace chainchaos
