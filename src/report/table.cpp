#include "report/table.hpp"

#include <algorithm>
#include <cstdio>

namespace chainchaos::report {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  const auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  const auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      line += cell;
      if (i + 1 < widths.size()) {
        line.append(widths[i] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  out += "== " + title_ + " ==\n";
  if (!header_.empty()) {
    out += render_row(header_);
    std::size_t rule_len = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      rule_len += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    out += std::string(rule_len, '-') + "\n";
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string pct(double numerator, double denominator) {
  // An empty population has no rate — "0.0%" would silently misreport
  // e.g. `measure_corpus --domains 0` or an attribution bucket no record
  // fell into.
  if (denominator == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * numerator / denominator);
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int counter = 0;
  for (std::size_t i = digits.size(); i-- > 0;) {
    out.insert(out.begin(), digits[i]);
    if (++counter == 3 && i != 0) {
      out.insert(out.begin(), ',');
      counter = 0;
    }
  }
  return out;
}

std::string count_pct(std::uint64_t count, std::uint64_t total) {
  return with_commas(count) + " (" +
         pct(static_cast<double>(count), static_cast<double>(total)) + ")";
}

}  // namespace chainchaos::report
