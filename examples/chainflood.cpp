// chainflood: socket-level load generator for a running chaind.
//
// Drives the connection-scaling behaviours that DESIGN.md §5.15
// promises, from outside the process, so scripts/epoll_smoke.sh can
// gate on them:
//
//   idle       open --connections keep-alive connections (one healthz
//              each to prove the stream works), hold them open for
//              --hold-ms, and probe request latency the whole time;
//   slowloris  --clients connections drip one header byte per
//              --drip-interval-ms, each from its own thread, while
//              well-behaved probes measure added latency;
//   storm      --connections short-lived connections cycling clean
//              close / RST / non-HTTP garbage.
//
// Probes run on their own service::Client during the hold; any probe
// error, or a probe slower than --latency-budget-ms, fails the run.
// --expect-shed requires at least one admission 503-and-close (and its
// absence otherwise is enforced); --expect-evicted requires the daemon
// to have dropped at least one of the hostile/idle connections before
// the hold ended. Exit status 0 = every gate held.
//
//   chainflood --port 8443 --mode idle --connections 10000 --hold-ms 4000
//   chainflood --port 8443 --mode slowloris --clients 64 --latency-budget-ms 1000
//   chainflood --port 8443 --mode idle --connections 128 --expect-shed
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "net/http.hpp"
#include "service/client.hpp"

using namespace chainchaos;
using Clock = std::chrono::steady_clock;

namespace {

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one complete HTTP response frame; empty string on timeout/EOF.
std::string recv_frame(int fd, int timeout_ms) {
  std::string buffer;
  char buf[4096];
  for (;;) {
    const auto probe = net::probe_response_frame(buffer);
    if (!probe.ok()) return {};
    if (probe.value().complete) return buffer.substr(0, probe.value().total_bytes);
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return {};
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return {};
    buffer.append(buf, static_cast<std::size_t>(n));
  }
}

std::string healthz_wire() {
  return "GET /healthz HTTP/1.1\r\nhost: 127.0.0.1\r\n"
         "content-length: 0\r\n\r\n";
}

/// EOF or error visible on the socket without blocking?
bool peer_closed(int fd) {
  char byte = 0;
  const ssize_t n = ::recv(fd, &byte, 1, MSG_DONTWAIT | MSG_PEEK);
  if (n == 0) return true;
  return n < 0 && errno != EAGAIN && errno != EWOULDBLOCK;
}

struct ProbeResult {
  std::size_t attempted = 0;
  std::size_t failed = 0;
  long max_latency_ms = 0;
};

/// Issues `probes` healthz round-trips spread across `hold_ms`.
ProbeResult run_probes(std::uint16_t port, std::size_t probes, int hold_ms,
                       int budget_ms) {
  ProbeResult result;
  if (probes == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    return result;
  }
  const int slice_ms = hold_ms / static_cast<int>(probes);
  service::Client client(port, budget_ms > 0 ? budget_ms * 2 : 5000);
  for (std::size_t i = 0; i < probes; ++i) {
    const auto before = Clock::now();
    const auto reply = client.healthz();
    const long took = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Clock::now() - before)
                          .count();
    ++result.attempted;
    if (took > result.max_latency_ms) result.max_latency_ms = took;
    if (!reply.ok() || reply.value().status != 200 ||
        (budget_ms > 0 && took > budget_ms)) {
      ++result.failed;
    }
    const long remaining = slice_ms - took;
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(remaining));
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string mode = "idle";
  std::size_t connections = 1000;
  std::size_t clients = 16;
  int hold_ms = 5000;
  std::size_t probes = 5;
  int latency_budget_ms = 0;
  int drip_interval_ms = 20;
  bool expect_shed = false;
  bool expect_evicted = false;

  cli::Flags flags;
  flags.add("--port", &port, "P");
  flags.add("--mode", &mode, "idle|slowloris|storm");
  flags.add("--connections", &connections, "N");
  flags.add("--clients", &clients, "N");
  flags.add("--hold-ms", &hold_ms, "MS");
  flags.add("--probes", &probes, "N");
  flags.add("--latency-budget-ms", &latency_budget_ms, "MS");
  flags.add("--drip-interval-ms", &drip_interval_ms, "MS");
  flags.add("--expect-shed", &expect_shed);
  flags.add("--expect-evicted", &expect_evicted);
  if (!flags.parse(argc, argv)) return 1;
  if (port == 0) {
    std::fprintf(stderr, "chainflood: --port is required\n");
    return 1;
  }

  // Each held connection costs one fd; take the hard cap so the target
  // daemon's limits, not ours, decide what happens.
  struct rlimit nofile {};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  std::size_t shed = 0;
  std::size_t held = 0;
  std::size_t evicted = 0;
  std::size_t errors = 0;
  ProbeResult probed;

  if (mode == "idle") {
    std::vector<int> fds;
    fds.reserve(connections);
    for (std::size_t i = 0; i < connections; ++i) {
      const int fd = dial(port);
      if (fd < 0) {
        ++errors;
        continue;
      }
      fds.push_back(fd);
    }
    // One healthz per connection proves the stream: held connections
    // answer 200; admission-shed connections already have a 503 queued
    // (or are closed), which the same read surfaces.
    const std::string wire = healthz_wire();
    for (const int fd : fds) send_all(fd, wire);
    for (const int fd : fds) {
      // Only a 503 that also closes the stream is an admission shed; an
      // in-stream 503 (burst overload) keeps the connection alive and
      // therefore counts as held.
      const std::string reply = recv_frame(fd, 5000);
      const bool closes = reply.find("connection: close") != std::string::npos;
      if (reply.find(" 503 ") != std::string::npos && closes) {
        ++shed;
      } else if (!reply.empty()) {
        ++held;
      } else {
        ++errors;
      }
    }
    probed = run_probes(port, probes, hold_ms, latency_budget_ms);
    for (const int fd : fds) {
      if (peer_closed(fd)) ++evicted;
      ::close(fd);
    }
  } else if (mode == "slowloris") {
    std::atomic<std::size_t> dropped{0};
    std::atomic<std::size_t> dial_errors{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto deadline = Clock::now() + std::chrono::milliseconds(hold_ms);
    for (std::size_t i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        const int fd = dial(port);
        if (fd < 0) {
          ++dial_errors;
          return;
        }
        const std::string opener = "POST /v1/analyze HTTP/1.1\r\n";
        const std::string pad = "x-chaos-pad-" + std::to_string(i) +
                                ": aaaaaaaa\r\n";
        bool alive = send_all(fd, opener);
        std::size_t cursor = 0;
        while (alive && Clock::now() < deadline) {
          pollfd pfd{fd, POLLIN, 0};
          if (::poll(&pfd, 1, drip_interval_ms) > 0 && peer_closed(fd)) {
            alive = false;
            break;
          }
          alive = send_all(fd, pad.substr(cursor % pad.size(), 1));
          ++cursor;
        }
        if (!alive) ++dropped;
        ::close(fd);
      });
    }
    probed = run_probes(port, probes, hold_ms, latency_budget_ms);
    for (std::thread& t : threads) t.join();
    held = clients - dropped.load() - dial_errors.load();
    evicted = dropped.load();
    errors = dial_errors.load();
  } else if (mode == "storm") {
    for (std::size_t i = 0; i < connections; ++i) {
      const int fd = dial(port);
      if (fd < 0) {
        ++errors;
        continue;
      }
      switch (i % 3) {
        case 0:  // clean close, no bytes
          break;
        case 1: {  // hard RST
          linger hard{1, 0};
          ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
          break;
        }
        case 2:  // bytes that are not HTTP
          send_all(fd, std::string("\x16\x03\x01garbage-not-http\r\n", 21));
          break;
      }
      ::close(fd);
      ++held;
    }
    probed = run_probes(port, probes, hold_ms, latency_budget_ms);
  } else {
    std::fprintf(stderr, "chainflood: unknown mode '%s'\n", mode.c_str());
    return 1;
  }

  std::printf("chainflood: mode=%s held=%zu shed=%zu evicted=%zu errors=%zu "
              "probes=%zu/%zu max_latency_ms=%ld\n",
              mode.c_str(), held, shed, evicted, errors,
              probed.attempted - probed.failed, probed.attempted,
              probed.max_latency_ms);

  bool ok = probed.failed == 0;
  if (mode != "storm" && errors != 0) ok = false;
  if (expect_shed && shed == 0) ok = false;
  if (!expect_shed && shed != 0) ok = false;
  if (expect_evicted && evicted == 0) ok = false;
  if (!ok) std::fprintf(stderr, "chainflood: FAILED\n");
  return ok ? 0 : 1;
}
