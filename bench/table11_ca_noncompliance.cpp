// Regenerates Table 11: CAs/resellers behind non-compliant chains
// (paper Appendix C), re-measured with the real analyzers over the
// generated corpus.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "chain/analyzer.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  struct PerCa {
    std::uint64_t total = 0;
    std::uint64_t noncompliant = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t irrelevant = 0;
    std::uint64_t multipath = 0;
    std::uint64_t reversed = 0;
    std::uint64_t incomplete = 0;
  };
  std::map<std::string, PerCa> by_ca;

  for (const dataset::DomainRecord& record : corpus->records()) {
    if (record.exemplar) continue;
    PerCa& ca = by_ca[record.observation.ca_name];
    ++ca.total;
    const chain::ComplianceReport report = analyzer.analyze(record.observation);
    if (report.compliant()) continue;
    ++ca.noncompliant;
    ca.duplicates += report.order.has_duplicates;
    ca.irrelevant += report.order.has_irrelevant;
    ca.multipath += report.order.multiple_paths;
    ca.reversed += report.order.reversed_sequence;
    ca.incomplete += !report.completeness.complete();
  }

  report::Table table("Table 11: CAs/resellers behind non-compliant chains "
                      "(measured, % of that CA's domains)");
  table.header({"CA / reseller", "Domains", "Non-compliant", "Duplicates",
                "Irrelevant", "Multi-path", "Reversed", "Incomplete"});

  const std::vector<std::string> order = {
      "Let's Encrypt", "Digicert",  "Sectigo Limited", "ZeroSSL",
      "GoGetSSL",      "TAIWAN-CA", "cyber_Folks S.A.", "Trustico",
      "Other CAs"};
  for (const std::string& name : order) {
    const auto it = by_ca.find(name);
    if (it == by_ca.end()) continue;
    const PerCa& ca = it->second;
    table.row({name, report::with_commas(ca.total),
               report::count_pct(ca.noncompliant, ca.total),
               report::count_pct(ca.duplicates, ca.total),
               report::count_pct(ca.irrelevant, ca.total),
               report::count_pct(ca.multipath, ca.total),
               report::count_pct(ca.reversed, ca.total),
               report::count_pct(ca.incomplete, ca.total)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 11 reference non-compliance rates: Let's Encrypt "
      "1.2%% (lowest — fully automated), Digicert 7.9%%, Sectigo 10.7%%, "
      "ZeroSSL 2.5%%, GoGetSSL 16.7%%, TAIWAN-CA 50.4%% (41.9%% incomplete: "
      "omitted intermediate), cyber_Folks 66.2%% and Trustico 65.7%% (both "
      "dominated by reversed sequences from reversed ca-bundles).\n");
  return 0;
}
