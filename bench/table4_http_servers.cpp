// Regenerates Table 4: deployment characteristics of the HTTP server
// models — by *executing* scripted administrator scenarios against each
// pipeline rather than reading static flags: the key-mismatch and
// duplicate-leaf checks are observed behaviourally.
#include <cstdio>

#include "ca/hierarchy.hpp"
#include "httpserver/server_model.hpp"
#include "report/table.hpp"

using namespace chainchaos;
using httpserver::DeploymentInput;
using httpserver::FileScheme;
using httpserver::HttpServerModel;

namespace {

const char* scheme_label(FileScheme scheme) {
  switch (scheme) {
    case FileScheme::kSeparateFiles: return "SF1 (cert + ca-bundle + key)";
    case FileScheme::kFullChain: return "SF2 (fullchain + key)";
    case FileScheme::kPfx: return "SF3 (PFX)";
  }
  return "?";
}

}  // namespace

int main() {
  const ca::CaHierarchy hierarchy =
      ca::CaHierarchy::create("Bench Deploy CA", 2, nullptr);
  const x509::CertPtr leaf = hierarchy.issue_leaf("bench-deploy.example.com");
  const crypto::RsaKeyPair& key =
      crypto::KeyPool::instance().leaf_slot(leaf->subject.to_string());
  const crypto::RsaKeyPair& wrong_key =
      crypto::KeyPool::instance().for_name("bench-wrong-key");

  report::Table table("Table 4: SSL deployment characteristics across HTTP "
                      "servers (observed behaviour)");
  table.header({"Server", "Auto mgmt", "Files", "Key-match check",
                "Dup-leaf check", "Dup-intermediate check"});

  for (const HttpServerModel& server : httpserver::all_server_models()) {
    const auto& traits = server.characteristics();

    // Scenario A: wrong private key — every server must reject.
    DeploymentInput wrong;
    wrong.certificate_file = {leaf};
    wrong.private_key = &wrong_key.priv;
    const bool key_checked = !server.deploy(wrong).accepted;

    // Scenario B: duplicated leaf in the configured material.
    DeploymentInput dup_leaf;
    if (traits.scheme == FileScheme::kSeparateFiles) {
      dup_leaf.certificate_file = {leaf};
      dup_leaf.chain_file = {leaf};  // admin copied the leaf again
      for (const auto& cert : hierarchy.bundle_ascending()) {
        dup_leaf.chain_file.push_back(cert);
      }
    } else {
      dup_leaf.certificate_file = {leaf, leaf};
      for (const auto& cert : hierarchy.bundle_ascending()) {
        dup_leaf.certificate_file.push_back(cert);
      }
    }
    dup_leaf.private_key = &key.priv;
    const bool dup_leaf_checked = !server.deploy(dup_leaf).accepted;

    // Scenario C: duplicated intermediate.
    DeploymentInput dup_int;
    dup_int.certificate_file = hierarchy.compliant_chain(leaf);
    dup_int.certificate_file.push_back(dup_int.certificate_file[1]);
    if (traits.scheme == FileScheme::kSeparateFiles) {
      dup_int.certificate_file = {leaf};
      dup_int.chain_file = hierarchy.bundle_ascending();
      dup_int.chain_file.push_back(dup_int.chain_file[0]);
    }
    dup_int.private_key = &key.priv;
    const bool dup_int_checked = !server.deploy(dup_int).accepted;

    table.row({to_string(server.software()),
               traits.automatic_certificate_management ? "yes" : "no",
               scheme_label(traits.scheme), key_checked ? "yes" : "no",
               dup_leaf_checked ? "yes" : "no",
               dup_int_checked ? "yes" : "no"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\n[paper] Table 4: every server checks the private-key/leaf match "
      "(the 'SSL_CTX_use_PrivateKey failed' guard behind Table 3's high "
      "compliance); only Azure Application Gateway and IIS reject duplicate "
      "leaves; no server checks duplicate intermediates/roots — which is "
      "why Table 10's duplicate rows exist.\n");
  return 0;
}
