// chainq: query CLI for the chaind analysis daemon.
//
// Speaks the service's HTTP/1.1 JSON API over one kept-alive loopback
// connection (so --repeat exercises the daemon's result cache the way a
// real repeat-heavy workload would).
//
// Usage:  chainq [--port P] [--domain D] [--repeat N] [--timeout-ms T]
//                <command> [file]
//
// Commands:
//   analyze FILE     POST the PEM/DER chain in FILE to /v1/analyze
//   lint FILE        POST it to /v1/lint
//   stats            GET /v1/stats
//   metrics          GET /v1/metrics (Prometheus text exposition)
//   trace            GET /v1/trace (chrome://tracing JSON; needs a
//                    daemon started with --trace to be non-empty)
//   health           GET /healthz (exit 0 iff the daemon answers 200)
//   make-chain FILE  write a demo root+intermediate+leaf PEM chain to
//                    FILE (for smoke tests and quickstarts; the root is
//                    included so chaind can self-anchor the analysis)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli_common.hpp"
#include "service/client.hpp"
#include "x509/builder.hpp"

using namespace chainchaos;

namespace {

int make_chain(const std::string& path, const std::string& domain) {
  using x509::CertificateBuilder;
  const x509::SigningIdentity root_id =
      x509::make_identity(asn1::Name::make("chainq Demo Root"));
  const x509::SigningIdentity inter_id =
      x509::make_identity(asn1::Name::make("chainq Demo Intermediate"));

  CertificateBuilder root_builder;
  root_builder.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
  const x509::CertPtr root = root_builder.self_sign(root_id.keys);

  CertificateBuilder inter_builder;
  inter_builder.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
  const x509::CertPtr inter = inter_builder.sign(root_id);

  CertificateBuilder leaf_builder;
  leaf_builder.as_leaf(domain);
  const x509::CertPtr leaf = leaf_builder.sign(inter_id);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "chainq: cannot write %s\n", path.c_str());
    return 1;
  }
  out << x509::to_pem(*leaf) << x509::to_pem(*inter) << x509::to_pem(*root);
  std::printf("wrote %s chain (leaf+intermediate+root) to %s\n",
              domain.c_str(), path.c_str());
  return 0;
}

int print_response(const Result<net::HttpResponse>& response) {
  if (!response.ok()) {
    std::fprintf(stderr, "chainq: %s\n",
                 response.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", chainchaos::to_string(response.value().body).c_str());
  if (response.value().status != 200) {
    std::fprintf(stderr, "chainq: HTTP %d %s\n", response.value().status,
                 response.value().reason.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string domain = "chainq.example";
  std::size_t repeat = 1;
  int timeout_ms = 5000;

  cli::Flags flags("<command> [file]");
  flags.add("--port", &port, "P");
  flags.add("--domain", &domain, "D");
  flags.add("--repeat", &repeat, "N");
  flags.add("--timeout-ms", &timeout_ms, "T");
  if (!flags.parse(argc, argv)) return 1;

  const auto& args = flags.positionals();
  if (args.empty()) {
    std::fprintf(stderr, "%s", flags.usage(argv[0]).c_str());
    return 1;
  }
  const std::string& command = args[0];

  if (command == "make-chain") {
    if (args.size() != 2) {
      std::fprintf(stderr, "chainq: make-chain needs an output file\n");
      return 1;
    }
    return make_chain(args[1], domain);
  }

  if (port == 0) {
    std::fprintf(stderr, "chainq: --port is required (chaind prints it)\n");
    return 1;
  }
  service::Client client(port, timeout_ms);

  if (command == "stats") return print_response(client.stats());
  if (command == "metrics") return print_response(client.metrics());
  if (command == "trace") return print_response(client.trace());
  if (command == "health") return print_response(client.healthz());

  if (command == "analyze" || command == "lint") {
    if (args.size() != 2) {
      std::fprintf(stderr, "chainq: %s needs a chain file\n",
                   command.c_str());
      return 1;
    }
    std::ifstream in(args[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "chainq: cannot read %s\n", args[1].c_str());
      return 1;
    }
    std::ostringstream body;
    body << in.rdbuf();

    if (repeat == 0) repeat = 1;
    int rc = 0;
    for (std::size_t i = 0; i + 1 < repeat; ++i) {
      // Warm-up repeats: same connection, same chain — cache hits.
      const auto response = command == "analyze"
                                ? client.analyze(body.str(), domain)
                                : client.lint(body.str(), domain);
      if (!response.ok() || response.value().status != 200) {
        std::fprintf(stderr, "chainq: repeat %zu failed\n", i + 1);
        return 1;
      }
    }
    rc = print_response(command == "analyze" ? client.analyze(body.str(), domain)
                                             : client.lint(body.str(), domain));
    return rc;
  }

  std::fprintf(stderr, "chainq: unknown command '%s'\n%s", command.c_str(),
               flags.usage(argv[0]).c_str());
  return 1;
}
