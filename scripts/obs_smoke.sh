#!/usr/bin/env bash
# End-to-end smoke test for the observability subsystem (DESIGN.md §5.11).
#
# Two legs:
#   1. Offline: a chainprof corpus sweep must attribute >= 90% of wall
#      clock to stage spans with zero drops, and the exported chrome
#      trace must be structurally sane.
#   2. Live: chaind with --trace on an ephemeral port; after real
#      traffic, GET /v1/metrics must pass the Prometheus exposition
#      checker (via chainprof --check-exposition) and carry both the
#      service histograms and the tracer's per-stage families, and
#      GET /v1/trace must return chrome trace JSON.
#
# Usage: obs_smoke.sh <chainprof-binary> <chaind-binary> <chainq-binary>
set -euo pipefail

CHAINPROF=${1:?usage: obs_smoke.sh <chainprof> <chaind> <chainq>}
CHAIND=${2:?usage: obs_smoke.sh <chainprof> <chaind> <chainq>}
CHAINQ=${3:?usage: obs_smoke.sh <chainprof> <chaind> <chainq>}

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"; [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

# --- leg 1: offline sweep profile --------------------------------------

"$CHAINPROF" --domains 2000 --trace-json "$WORKDIR/trace.json" \
    >"$WORKDIR/profile.txt"
cat "$WORKDIR/profile.txt"

# The acceptance bar: stage spans account for >= 90% of wall clock.
COVERAGE=$(sed -n 's/^stage total = \([0-9.]*\)% of wall clock.*/\1/p' \
    "$WORKDIR/profile.txt")
[ -n "$COVERAGE" ] || { echo "FAIL: no coverage line in chainprof output"; exit 1; }
awk -v c="$COVERAGE" 'BEGIN { exit (c >= 90.0) ? 0 : 1 }' \
    || { echo "FAIL: stage coverage $COVERAGE% is below 90%"; exit 1; }
grep -q " 0 dropped" "$WORKDIR/profile.txt" \
    || { echo "FAIL: sweep dropped spans (buffer too small?)"; exit 1; }
echo "sweep coverage: $COVERAGE% of wall clock, no dropped spans"

# The chrome trace export must be structurally sane: complete-event
# records with durations, and no truncation marker.
grep -q '"traceEvents"' "$WORKDIR/trace.json" \
    || { echo "FAIL: trace.json has no traceEvents array"; exit 1; }
grep -q '"ph":"X"' "$WORKDIR/trace.json" \
    || { echo "FAIL: trace.json has no complete events"; exit 1; }
grep -q '"dropped_spans":"0"' "$WORKDIR/trace.json" \
    || { echo "FAIL: trace.json reports dropped spans"; exit 1; }
echo "chrome trace export OK"

# --- leg 2: live daemon metrics ----------------------------------------

CHAIN="$WORKDIR/chain.pem"
PORT_FILE="$WORKDIR/port.txt"
"$CHAINQ" make-chain "$CHAIN"

"$CHAIND" --port 0 --port-file "$PORT_FILE" --duration 120 --trace \
    >"$WORKDIR/chaind.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "FAIL: chaind never wrote its port file"; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "chaind is up on 127.0.0.1:$PORT (tracing on)"

# Real traffic: misses and hits, so the latency and queue-wait
# histograms and the per-stage span histograms all have observations.
"$CHAINQ" --port "$PORT" --repeat 5 analyze "$CHAIN" >/dev/null
"$CHAINQ" --port "$PORT" stats >/dev/null

"$CHAINQ" --port "$PORT" metrics >"$WORKDIR/metrics.txt"
"$CHAINPROF" --check-exposition "$WORKDIR/metrics.txt" \
    || { echo "FAIL: /v1/metrics is not valid Prometheus exposition"; exit 1; }
grep -q 'chainchaos_requests_total{endpoint="analyze"}' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing per-endpoint request counters"; exit 1; }
grep -q 'chainchaos_queue_wait_seconds_bucket' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing the queue-wait histogram"; exit 1; }
grep -q 'chainchaos_stage_duration_seconds_service_handle' "$WORKDIR/metrics.txt" \
    || { echo "FAIL: metrics missing tracer stage histograms (is --trace on?)"; exit 1; }
echo "/v1/metrics passes the exposition checker"

"$CHAINQ" --port "$PORT" trace >"$WORKDIR/daemon_trace.json"
grep -q '"traceEvents"' "$WORKDIR/daemon_trace.json" \
    || { echo "FAIL: /v1/trace has no traceEvents array"; exit 1; }
echo "/v1/trace serves chrome trace JSON"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "FAIL: chaind exited with $RC"; exit 1; }

echo "obs smoke OK"
