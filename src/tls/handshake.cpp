#include "tls/handshake.hpp"

namespace chainchaos::tls {

HandshakeOutcome simulate_handshake(const ChainServer& server,
                                    const pathbuild::PathBuilder& builder,
                                    TlsVersion version) {
  HandshakeOutcome outcome;

  // Server -> client over the record layer.
  const Bytes wire = server.certificate_records(version);
  auto message = decode_records(wire, ContentType::kHandshake);
  if (!message.ok()) {
    outcome.error = message.error().to_string();
    outcome.alert = AlertDescription::kDecodeError;
    outcome.alert_record =
        encode_records(ContentType::kAlert, encode_alert(outcome.alert));
    return outcome;
  }
  auto list = decode_certificate_message(message.value(), version);
  if (!list.ok()) {
    outcome.error = list.error().to_string();
    outcome.alert = AlertDescription::kDecodeError;
    outcome.alert_record =
        encode_records(ContentType::kAlert, encode_alert(outcome.alert));
    return outcome;
  }
  outcome.wire_ok = true;
  outcome.build = builder.build(list.value(), server.hostname());
  outcome.alert = alert_for(outcome.build.status);
  outcome.alert_record =
      encode_records(ContentType::kAlert, encode_alert(outcome.alert));
  return outcome;
}

}  // namespace chainchaos::tls
