#include <gtest/gtest.h>

#include "asn1/der.hpp"
#include "asn1/name.hpp"
#include "asn1/oids.hpp"

namespace chainchaos::asn1 {
namespace {

using crypto::BigInt;

// ---------------------------------------------------------------------------
// Length encoding
// ---------------------------------------------------------------------------

TEST(DerLengthTest, ShortAndLongForms) {
  EXPECT_EQ(encode_length(0), (Bytes{0x00}));
  EXPECT_EQ(encode_length(0x7f), (Bytes{0x7f}));
  EXPECT_EQ(encode_length(0x80), (Bytes{0x81, 0x80}));
  EXPECT_EQ(encode_length(0xff), (Bytes{0x81, 0xff}));
  EXPECT_EQ(encode_length(0x100), (Bytes{0x82, 0x01, 0x00}));
  EXPECT_EQ(encode_length(0x10000), (Bytes{0x83, 0x01, 0x00, 0x00}));
}

TEST(DerLengthTest, RoundTripAcrossBoundaries) {
  for (std::size_t len : {0u, 1u, 127u, 128u, 129u, 255u, 256u, 65535u, 65536u}) {
    DerWriter writer;
    writer.add_tlv(Tag::kOctetString, Bytes(len, 0xab));
    DerReader reader(writer.bytes());
    auto elem = reader.read(Tag::kOctetString);
    ASSERT_TRUE(elem.ok()) << len;
    EXPECT_EQ(elem.value().body.size(), len);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(DerReaderTest, RejectsNonMinimalLongFormLength) {
  // 0x81 0x05 is long-form for a value that fits short form.
  const Bytes bogus = {0x04, 0x81, 0x05, 1, 2, 3, 4, 5};
  DerReader reader(bogus);
  EXPECT_FALSE(reader.read_any().ok());
}

TEST(DerReaderTest, RejectsTruncation) {
  DerWriter writer;
  writer.add_octet_string(Bytes(40, 0x11));
  const Bytes full = writer.bytes();
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    DerReader reader(BytesView(full.data(), cut));
    auto elem = reader.read_any();
    if (cut < 2) {
      EXPECT_FALSE(elem.ok());
    } else {
      EXPECT_FALSE(elem.ok()) << "cut=" << cut;
    }
  }
}

TEST(DerReaderTest, RejectsIndefiniteLength) {
  const Bytes indefinite = {0x30, 0x80, 0x00, 0x00};
  DerReader reader(indefinite);
  EXPECT_FALSE(reader.read_any().ok());
}

TEST(DerReaderTest, RejectsLengthFieldWiderThanFourOctets) {
  // 0x85 announces 5 length octets; even with a value that would fit,
  // anything past 4 octets (4 GiB) is rejected outright.
  Bytes bogus = {0x04, 0x85, 0x00, 0x00, 0x00, 0x00, 0x03, 1, 2, 3};
  EXPECT_FALSE(DerReader(bogus).read_any().ok());
  // 8 octets used to be accepted; must now fail too.
  bogus = {0x04, 0x88, 0, 0, 0, 0, 0, 0, 0, 0x01, 0xaa};
  EXPECT_FALSE(DerReader(bogus).read_any().ok());
}

TEST(DerReaderTest, RejectsTruncatedLengthOctets) {
  // 0x83 announces 3 length octets but only one follows.
  const Bytes bogus = {0x30, 0x83, 0x01};
  EXPECT_FALSE(DerReader(bogus).read_any().ok());
}

TEST(DerReaderTest, RejectsLengthExceedingRemainingBuffer) {
  // Length decodes fine (0xfffffffb) but the buffer holds 4 bytes; the
  // overflow-checked comparison must reject instead of wrapping.
  const Bytes bogus = {0x04, 0x84, 0xff, 0xff, 0xff, 0xfb, 1, 2, 3, 4};
  EXPECT_FALSE(DerReader(bogus).read_any().ok());
}

TEST(DerReaderTest, ToleratesLeadingZeroLongFormLength) {
  // 0x82 0x00 0x85: BER-legal, DER-illegal (a zero-padded length). The
  // reader deliberately accepts it so real-world certificates parse and
  // chainlint can flag the violation (cert.der_nonminimal_length). Only
  // values that genuinely need long form qualify — shorter ones still
  // fail the minimality check above.
  Bytes padded = {0x04, 0x82, 0x00, 0x85};
  padded.insert(padded.end(), 0x85, 0xab);
  auto elem = DerReader(padded).read_any();
  ASSERT_TRUE(elem.ok()) << elem.error().to_string();
  EXPECT_EQ(elem.value().body.size(), 0x85u);
}

// ---------------------------------------------------------------------------
// Primitive types
// ---------------------------------------------------------------------------

TEST(DerTest, BooleanRoundTrip) {
  DerWriter writer;
  writer.add_boolean(true);
  writer.add_boolean(false);
  DerReader reader(writer.bytes());
  EXPECT_TRUE(reader.read_boolean().value());
  EXPECT_FALSE(reader.read_boolean().value());
}

TEST(DerTest, IntegerEncodingAddsSignPadding) {
  DerWriter writer;
  writer.add_integer(std::uint64_t{0x80});
  // 0x80 would read as negative, so DER requires 0x00 0x80.
  EXPECT_EQ(writer.bytes(), (Bytes{0x02, 0x02, 0x00, 0x80}));
}

TEST(DerTest, IntegerRoundTripVariousWidths) {
  for (const char* hex :
       {"00", "01", "7f", "80", "ff", "0100", "deadbeef",
        "0123456789abcdef0123456789abcdef"}) {
    DerWriter writer;
    writer.add_integer(BigInt::from_hex(hex));
    DerReader reader(writer.bytes());
    auto value = reader.read_integer();
    ASSERT_TRUE(value.ok()) << hex;
    EXPECT_EQ(value.value(), BigInt::from_hex(hex)) << hex;
  }
}

TEST(DerTest, BitStringRoundTrip) {
  const Bytes payload = {0xca, 0xfe};
  DerWriter writer;
  writer.add_bit_string(payload);
  DerReader reader(writer.bytes());
  auto bits = reader.read_bit_string();
  ASSERT_TRUE(bits.ok());
  EXPECT_TRUE(equal(bits.value(), payload));
}

TEST(DerTest, NullEncoding) {
  DerWriter writer;
  writer.add_null();
  EXPECT_EQ(writer.bytes(), (Bytes{0x05, 0x00}));
}

struct OidCase {
  const char* dotted;
  std::vector<std::uint8_t> body;
};

class OidTest : public ::testing::TestWithParam<OidCase> {};

TEST_P(OidTest, EncodeMatchesKnownBytes) {
  EXPECT_EQ(encode_oid_body(GetParam().dotted), Bytes(GetParam().body));
}

TEST_P(OidTest, DecodeRoundTrip) {
  auto decoded = decode_oid_body(Bytes(GetParam().body));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), GetParam().dotted);
}

INSTANTIATE_TEST_SUITE_P(
    KnownOids, OidTest,
    ::testing::Values(
        OidCase{"2.5.29.19", {0x55, 0x1d, 0x13}},            // basicConstraints
        OidCase{"2.5.4.3", {0x55, 0x04, 0x03}},              // commonName
        OidCase{"1.2.840.113549.1.1.11",                     // sha256WithRSA
                {0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x0b}},
        OidCase{"1.3.6.1.5.5.7.48.2",                        // caIssuers
                {0x2b, 0x06, 0x01, 0x05, 0x05, 0x07, 0x30, 0x02}}));

TEST(OidDecodeTest, RejectsTruncatedArc) {
  EXPECT_FALSE(decode_oid_body(Bytes{0x55, 0x8d}).ok());  // continuation bit set
  EXPECT_FALSE(decode_oid_body(Bytes{}).ok());
}

TEST(DerTest, StringTypesRoundTrip) {
  DerWriter writer;
  writer.add_utf8_string("héllo");
  writer.add_printable_string("plain");
  DerReader reader(writer.bytes());
  EXPECT_EQ(reader.read_string().value(), "héllo");
  EXPECT_EQ(reader.read_string().value(), "plain");
}

// ---------------------------------------------------------------------------
// GeneralizedTime
// ---------------------------------------------------------------------------

struct TimeCase {
  std::int64_t unix_seconds;
  const char* rendered;
};

class TimeTest : public ::testing::TestWithParam<TimeCase> {};

TEST_P(TimeTest, EncodesCivilTime) {
  DerWriter writer;
  writer.add_generalized_time(GetParam().unix_seconds);
  const Bytes& encoded = writer.bytes();
  // Skip tag+length (GeneralizedTime body is always 15 chars here).
  const std::string body(encoded.begin() + 2, encoded.end());
  EXPECT_EQ(body, GetParam().rendered);
}

TEST_P(TimeTest, RoundTrips) {
  DerWriter writer;
  writer.add_generalized_time(GetParam().unix_seconds);
  DerReader reader(writer.bytes());
  auto value = reader.read_generalized_time();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), GetParam().unix_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Epochs, TimeTest,
    ::testing::Values(TimeCase{0, "19700101000000Z"},
                      TimeCase{951782400, "20000229000000Z"},   // leap day
                      TimeCase{1700000000, "20231114221320Z"},
                      TimeCase{4102444800, "21000101000000Z"},  // non-leap century
                      TimeCase{2147483647, "20380119031407Z"}));

TEST(TimeTest, RejectsMalformed) {
  const auto try_parse = [](const std::string& body) {
    DerWriter writer;
    writer.add_tlv(Tag::kGeneralizedTime, to_bytes(body));
    DerReader reader(writer.bytes());
    return reader.read_generalized_time().ok();
  };
  EXPECT_FALSE(try_parse("20231114221320"));    // missing Z
  EXPECT_FALSE(try_parse("2023111422132Z"));    // short
  EXPECT_FALSE(try_parse("20231314221320Z"));   // month 13
  EXPECT_FALSE(try_parse("2023111422x320Z"));   // non-digit
  EXPECT_TRUE(try_parse("20231114221320Z"));
}

// ---------------------------------------------------------------------------
// Name
// ---------------------------------------------------------------------------

TEST(NameTest, MakeOrdersAttributes) {
  const Name name = Name::make("example.com", "Example Org", "US");
  ASSERT_EQ(name.attributes().size(), 3u);
  EXPECT_EQ(name.attributes()[0].oid, oid::kCountryName);
  EXPECT_EQ(name.attributes()[2].oid, oid::kCommonName);
  EXPECT_EQ(name.common_name().value(), "example.com");
  EXPECT_EQ(name.organization().value(), "Example Org");
}

TEST(NameTest, ToStringRendersCnFirst) {
  const Name name = Name::make("example.com", "Example Org", "US");
  EXPECT_EQ(name.to_string(), "CN=example.com, O=Example Org, C=US");
  EXPECT_EQ(Name().to_string(), "");
}

TEST(NameTest, EncodeDecodeRoundTrip) {
  const Name name = Name::make("www.example.com", "Example", "DE");
  auto decoded = Name::decode(name.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), name);
}

TEST(NameTest, EmptyNameRoundTrip) {
  const Name empty;
  auto decoded = Name::decode(empty.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(NameTest, ComparisonIsExact) {
  EXPECT_EQ(Name::make("a"), Name::make("a"));
  EXPECT_NE(Name::make("a"), Name::make("A"));  // DN matching is exact bytes
  EXPECT_NE(Name::make("a", "o1"), Name::make("a", "o2"));
  EXPECT_NE(Name::make("a"), Name());
}

TEST(NameTest, CustomAttributePreserved) {
  Name name;
  name.add("2.5.4.11", "Engineering");  // OU
  auto decoded = Name::decode(name.encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().attributes().size(), 1u);
  EXPECT_EQ(decoded.value().attributes()[0].value, "Engineering");
  EXPECT_EQ(decoded.value().to_string(), "OU=Engineering");
}

}  // namespace
}  // namespace chainchaos::asn1
