// chaind request handling: HTTP request → JSON response, no sockets.
//
// The handler is the service's application layer. It decodes the posted
// chain (PEM bundle or concatenated DER), consults the result cache, and
// on a miss runs the full §4/§5 pipeline — ComplianceAnalyzer for the
// Table 3/5/7 verdicts, chainlint for per-certificate findings, and
// PathBuilder for the client's-eye construction outcome — then renders
// one JSON document via report::JsonWriter. Identical chains produce
// byte-identical bodies whether served from cache or computed fresh
// (cache state is surfaced only in the x-cache response header), which
// tests/service_test.cpp enforces.
//
// Thread safety: handle() is const-correct in spirit — all mutable state
// (cache, metrics) is internally synchronized, so one handler is shared
// by every server worker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/aia_repository.hpp"
#include "net/http.hpp"
#include "obs/timeseries.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "truststore/root_store.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::service {

struct HandlerOptions {
  /// Trust anchors for completeness/path building. When null the handler
  /// anchors each request on the self-signed certificates the posted
  /// chain itself carries (the measure_corpus --import convention).
  const truststore::RootStore* roots = nullptr;

  /// Reference time for lint expiry rules; 0 disables them (the corpus
  /// sweeps' determinism convention).
  std::int64_t now = 0;

  /// Optional AIA repository. When set, path building completes missing
  /// issuers via AIA (with the retry policy below) and /v1/stats reports
  /// the repository's fetch counters; when null the handler builds from
  /// the posted certificates alone (the historical behaviour).
  net::AiaRepository* aia = nullptr;

  /// AIA retry discipline applied when `aia` is set (see
  /// pathbuild::BuildPolicy's aia_* knobs).
  int aia_max_retries = 0;
  int aia_deadline_ms = 0;

  /// The chainwatch per-second counter ring behind GET /v1/timeseries.
  /// Wired by the Server (which owns the ring); null when the handler
  /// runs standalone, in which case the endpoint answers 404.
  const obs::TimeSeriesRing* timeseries = nullptr;
};

/// Splits a request body into certificates: a PEM bundle when the BEGIN
/// marker is present, otherwise back-to-back DER TLVs.
Result<std::vector<x509::CertPtr>> decode_chain_body(BytesView body);

class RequestHandler {
 public:
  /// `cache` and `metrics` must outlive the handler; either may be
  /// shared with the server that owns them.
  RequestHandler(HandlerOptions options, ResultCache* cache,
                 Metrics* metrics);

  /// Dispatches one parsed request to its endpoint. Never throws; every
  /// failure is a JSON error response with a 4xx status.
  net::HttpResponse handle(const net::HttpRequest& request);

 private:
  net::HttpResponse handle_chain_endpoint(const net::HttpRequest& request,
                                          bool full_analysis);

  /// /v1/parsdiff: parses the posted blobs under every parsdiff panel
  /// profile and reports the accept/reject vector plus the PD-* class
  /// when the panel splits. Unlike the chain endpoints the body is split
  /// leniently — inputs that no profile accepts are still reportable.
  net::HttpResponse handle_parsdiff(const net::HttpRequest& request);

  /// Cache-miss path: run analyzers and render the response body.
  std::string render_chain_report(const std::vector<x509::CertPtr>& chain,
                                  const std::string& domain,
                                  bool full_analysis) const;

  HandlerOptions options_;
  ResultCache* cache_;
  Metrics* metrics_;
};

/// Canonical JSON error body ({"error":code,"detail":...}) used by every
/// non-2xx service response.
net::HttpResponse json_error(int status, const std::string& reason,
                             const std::string& code,
                             const std::string& detail);

/// The backpressure response: 503 with Retry-After, sent by the acceptor
/// when the request queue is full.
net::HttpResponse busy_response(unsigned retry_after_seconds);

}  // namespace chainchaos::service
