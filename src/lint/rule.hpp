// chainlint rule model: the static-analysis vocabulary.
//
// A Rule is a stable descriptor (zlint-style): a dotted ID in a fixed
// namespace ("cert." for certificate-level checks, "chain." for
// chain-level checks), a severity, the RFC/BR/paper citation the check
// enforces, and a one-line human description. Rules never change ID once
// shipped — downstream tooling keys on them — and the registry
// (registry.hpp) guarantees IDs are unique and iterated in sorted order,
// so every lint pass emits findings deterministically.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace chainchaos::lint {

/// Finding severities, strictest first (indexable: 0..kSeverityCount-1).
enum class Severity { kError, kWarn, kInfo, kNotice };

inline constexpr std::size_t kSeverityCount = 4;

const char* to_string(Severity severity);

/// Immutable rule descriptor. Instances live in the static rule tables
/// (cert_rules.cpp / chain_rules.cpp) for the life of the process, so
/// findings can reference them by pointer.
struct Rule {
  std::string_view id;           ///< stable, e.g. "chain.leaf_not_first"
  Severity severity = Severity::kError;
  std::string_view citation;     ///< e.g. "RFC 5280 §4.1.2.2"
  std::string_view description;  ///< one-line human explanation
};

/// One fired rule instance.
struct Finding {
  const Rule* rule = nullptr;
  int cert_index = -1;  ///< position in the served list; -1 = chain-level
  std::string detail;   ///< instance specifics ("3 copies", a bad URI, ...)
};

/// Every finding for one linted chain (or one standalone certificate).
struct LintReport {
  std::string domain;
  std::size_t certificates = 0;
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }

  bool has(std::string_view rule_id) const {
    for (const Finding& f : findings) {
      if (f.rule->id == rule_id) return true;
    }
    return false;
  }

  std::size_t count(Severity severity) const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.rule->severity == severity;
    return n;
  }
};

}  // namespace chainchaos::lint
