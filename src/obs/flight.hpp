// chainwatch flight recorder: the newest events + spans dumped to a file
// when the process dies — or on demand (DESIGN.md §5.16).
//
// The chaos campaign's whole premise is that the daemon will sometimes
// be driven into a crash; the flight recorder makes those crashes
// diagnosable by preserving what the process was doing in its final
// moments. Everything here obeys async-signal-safety rules:
//
//   * the dump path calls only open(2)/write(2)/close(2) plus
//     sigaction/raise — never malloc, never a mutex, never stdio;
//   * event and span sources are pre-existing, pre-allocated, lock-free
//     structures (EventLog's ring, the Tracer's flight-buffer mirror);
//   * all formatting is manual decimal/escape into fixed stack buffers;
//   * torn ring slots are detected via the commit word and skipped.
//
// The dump format is JSONL: a header line, one line per event ({"e":…})
// and span ({"s":…}), and a footer with totals — parseable by any JSON
// tool one line at a time even when the file is truncated mid-write.
#pragma once

#include <cstddef>

namespace chainchaos::obs::flight {

/// Where crash dumps go (copied into a fixed internal buffer; paths
/// longer than 255 bytes are rejected). Must be set before a dump.
bool set_dump_path(const char* path);

/// Newest-N limits per source (defaults: 256 events, 256 spans).
void set_limits(std::size_t max_events, std::size_t max_spans);

/// Installs dump-then-reraise handlers for SIGSEGV, SIGABRT, SIGBUS and
/// SIGFPE. The handler writes the dump, restores the default
/// disposition, and re-raises, so the process still dies by the
/// original signal (exit status and core behavior are preserved).
void install_signal_handlers();

/// Writes a dump to an already-open fd. Async-signal-safe; `signal` is
/// recorded in the header (0 = on-demand dump). Returns the number of
/// records (events + spans) dumped.
std::size_t dump_to_fd(int fd, int signal);

/// On-demand dump to the configured path (ordinary context, still uses
/// only the signal-safe writer). Returns false when no path is set or
/// the file cannot be opened.
bool dump_now();

}  // namespace chainchaos::obs::flight
