#include "httpserver/server_model.hpp"

namespace chainchaos::httpserver {

const char* to_string(ServerSoftware software) {
  switch (software) {
    case ServerSoftware::kApacheLegacy: return "Apache (<2.4.8)";
    case ServerSoftware::kApache: return "Apache (>=2.4.8)";
    case ServerSoftware::kNginx: return "Nginx";
    case ServerSoftware::kAzureGateway: return "Microsoft-Azure-Application-Gateway";
    case ServerSoftware::kIis: return "IIS";
    case ServerSoftware::kAwsElb: return "AWS ELB";
  }
  return "?";
}

HttpServerModel HttpServerModel::make(ServerSoftware software) {
  ServerCharacteristics traits;
  switch (software) {
    case ServerSoftware::kApacheLegacy:
      traits.automatic_certificate_management = true;
      traits.scheme = FileScheme::kSeparateFiles;  // SF1
      break;
    case ServerSoftware::kApache:
      traits.automatic_certificate_management = true;
      traits.scheme = FileScheme::kFullChain;  // SF2 since 2.4.8
      break;
    case ServerSoftware::kNginx:
      traits.automatic_certificate_management = true;
      traits.scheme = FileScheme::kFullChain;
      break;
    case ServerSoftware::kAzureGateway:
      traits.automatic_certificate_management = true;
      traits.scheme = FileScheme::kPfx;
      traits.checks_duplicate_leaf = true;
      break;
    case ServerSoftware::kIis:
      traits.automatic_certificate_management = false;
      traits.scheme = FileScheme::kPfx;
      traits.checks_duplicate_leaf = true;
      break;
    case ServerSoftware::kAwsElb:
      traits.automatic_certificate_management = true;
      traits.scheme = FileScheme::kSeparateFiles;
      break;
  }
  return HttpServerModel(software, traits);
}

DeploymentResult HttpServerModel::deploy(const DeploymentInput& input) const {
  DeploymentResult result;
  if (input.certificate_file.empty()) {
    result.error = "no certificate configured";
    return result;
  }

  // Every studied server verifies the private key against the *first*
  // certificate of the certificate file — the check the paper credits
  // for the high leaf-placement compliance (§4.1).
  if (traits_.checks_private_key_match) {
    if (input.private_key == nullptr ||
        !(input.certificate_file.front()->public_key ==
          crypto::RsaPublicKey{input.private_key->n, input.private_key->e})) {
      result.error = "SSL_CTX_use_PrivateKey failed: key values mismatch";
      return result;
    }
  }

  // Assemble the chain exactly as the software would serve it.
  std::vector<x509::CertPtr> served = input.certificate_file;
  if (traits_.scheme == FileScheme::kSeparateFiles) {
    // SF1: the chain file is appended verbatim. An admin who copied the
    // leaf into the ca-bundle produces a duplicated leaf on the wire.
    served.insert(served.end(), input.chain_file.begin(),
                  input.chain_file.end());
  }
  // SF2/SF3: everything is already in certificate_file.

  if (traits_.checks_duplicate_leaf) {
    const Bytes& leaf_fp = served.front()->fingerprint;
    int leaf_copies = 0;
    for (const x509::CertPtr& cert : served) {
      if (equal(cert->fingerprint, leaf_fp)) ++leaf_copies;
    }
    if (leaf_copies > 1) {
      result.error =
          "certificate upload rejected: more than one leaf certificate "
          "matches the private key";
      return result;
    }
  }
  // No studied server deduplicates intermediates/roots — that gap is
  // exactly what produces Table 10's duplicate-certificate rows.

  result.accepted = true;
  result.served_chain = std::move(served);
  return result;
}

std::vector<HttpServerModel> all_server_models() {
  return {HttpServerModel::make(ServerSoftware::kApacheLegacy),
          HttpServerModel::make(ServerSoftware::kApache),
          HttpServerModel::make(ServerSoftware::kNginx),
          HttpServerModel::make(ServerSoftware::kAzureGateway),
          HttpServerModel::make(ServerSoftware::kIis),
          HttpServerModel::make(ServerSoftware::kAwsElb)};
}

}  // namespace chainchaos::httpserver
