// chaind: the loopback TCP analysis daemon (DESIGN.md §5.9, §5.15).
//
// Architecture, front to back:
//
//   event-loop thread ──► bounded work queue ──► N worker threads
//        │ (epoll/poll readiness)  │ (mutex+cv)       │ (handlers only)
//        ├─ accept + admission     │                  └─ completions ─┐
//        ├─ incremental parse      └─ queue full: 503 + Retry-After   │
//        ├─ timeout wheel (read/write/idle deadlines)                 │
//        └─ ordered response write-back ◄── wake pipe ◄───────────────┘
//
// One thread owns every socket: it accepts, reads request bytes into
// per-connection buffers, frames them incrementally with
// net::probe_request_frame, and writes responses back with
// partial-write continuation — all fds non-blocking, all readiness via
// epoll(7) (poll(2) where epoll is unavailable or --poll forces the
// fallback). Workers never touch a socket: they pop parsed requests,
// run the handler, and post the response to a completion list the loop
// drains through a wake pipe. HTTP/1.1 keep-alive and pipelining are
// native: each connection holds an ordered window of response slots
// (up to pipeline_depth) and the loop writes the ready prefix strictly
// in order, so responses can be computed in parallel without ever
// desynchronising the stream.
//
// Robustness is the point of the design:
//   * a timeout wheel enforces read (frame must complete within
//     read_timeout_ms of its first byte — slow-loris drips do not
//     extend it), write (peer must drain each response within
//     write_timeout_ms), and idle deadlines without a thread or timer
//     per connection;
//   * admission control: max_connections caps the loop's population
//     (excess accepts get 503 + Retry-After and close), and a reserved
//     fd lets accept() under EMFILE/ENFILE degrade to accept+503+close
//     instead of spinning with the backlog full;
//   * overload on an established connection answers 503 in the
//     request's pipeline slot — backpressure is explicit and never
//     desequences the stream;
//   * stop() is graceful: accepting ends, in-flight and buffered
//     requests are served to completion (their responses forced
//     "connection: close"), idle connections are shed, then the loop
//     and workers exit.
//
// The server binds 127.0.0.1 only — it is an analysis sidecar, not an
// internet-facing listener.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"
#include "service/handlers.hpp"

namespace chainchaos::service {

struct ServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read the bound port from port())
  unsigned workers = 4;
  std::size_t queue_capacity = 64;   ///< pending requests before 503
  std::size_t cache_capacity = 4096; ///< result-cache entries; 0 disables
  std::size_t cache_shards = 8;
  int read_timeout_ms = 5000;   ///< first frame byte -> complete frame
  int write_timeout_ms = 5000;  ///< per-response send deadline
  unsigned retry_after_seconds = 1;  ///< advertised in 503 responses
  int idle_timeout_ms = 0;      ///< keep-alive idle deadline; 0 = read timeout
  std::size_t max_connections = 0;  ///< admission cap; 0 = unlimited
  std::size_t pipeline_depth = 32;  ///< unanswered requests per connection
  bool force_poll = false;  ///< use poll(2) even where epoll is available
  int handler_stall_ms = 0; ///< test seam: worker sleeps before each handle
  int sample_interval_ms = 1000;  ///< chainwatch time-series cadence
  int slow_request_ms = 0;  ///< emit a slow_request event past this; 0 = off
  HandlerOptions handler;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< stops if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, starts the event loop and worker threads.
  /// Returns the bound port (the ephemeral one when config.port == 0).
  Result<std::uint16_t> start();

  std::uint16_t port() const { return port_; }
  bool running() const { return started_ && !stopping_.load(); }

  /// True when the running event loop is on the epoll backend (false on
  /// the poll(2) fallback, or before start()).
  bool using_epoll() const;

  /// Graceful shutdown: stop accepting, serve everything buffered and
  /// in-flight, join all threads. Idempotent.
  void stop();

  Metrics& metrics() { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  const obs::TimeSeriesRing& timeseries() const { return timeseries_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One parsed request handed to the worker pool. `conn`/`seq` name the
  /// pipeline slot the response must land in; `parsed_at` anchors both
  /// the queue-wait histogram and the response-latency measurement.
  struct WorkItem {
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    net::HttpRequest request;
    Clock::time_point parsed_at{};
  };

  /// A handler result travelling back to the event loop.
  struct Completion {
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    net::HttpResponse response;
    bool close_after = false;
  };

  struct Loop;  ///< the event-loop state, private to server.cpp

  void worker_thread();
  void wake_loop();

  /// Pushes one row of every counter domain into the time-series ring
  /// (called from the event loop at sample_interval_ms cadence).
  void sample_timeseries();

  ServerConfig config_;
  ResultCache cache_;
  Metrics metrics_;
  obs::TimeSeriesRing timeseries_;
  RequestHandler handler_;

  int listen_fd_ = -1;
  int wake_rx_ = -1;   ///< loop end of the wake pipe
  int wake_tx_ = -1;   ///< worker end of the wake pipe
  int reserve_fd_ = -1;  ///< sacrificial fd for EMFILE accept recovery
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> work_queue_;
  bool workers_done_ = false;  ///< set under queue_mutex_ after loop exit

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  std::unique_ptr<Loop> loop_;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace chainchaos::service
