#include "dataset/defects.hpp"

#include <algorithm>
#include <cassert>

#include "x509/builder.hpp"

namespace chainchaos::dataset {

const char* to_string(DefectType type) {
  switch (type) {
    case DefectType::kNone: return "none";
    case DefectType::kDuplicateLeaf: return "duplicate leaf";
    case DefectType::kDuplicateIntermediate: return "duplicate intermediate";
    case DefectType::kDuplicateRoot: return "duplicate root";
    case DefectType::kIrrelevantRoot: return "irrelevant root";
    case DefectType::kStaleLeaves: return "stale leaves";
    case DefectType::kIrrelevantOtherChain: return "irrelevant other chain";
    case DefectType::kIrrelevantIntermediate: return "irrelevant intermediate";
    case DefectType::kMultiplePathsCrossSign: return "multiple paths (cross-sign)";
    case DefectType::kMultiplePathsTwinValidity: return "multiple paths (twin validity)";
    case DefectType::kReversedSequence: return "reversed sequence";
    case DefectType::kMissingIntermediate: return "missing intermediate";
    case DefectType::kMissingIntermediateNoAia: return "missing intermediate (no AIA)";
    case DefectType::kMissingIntermediateDeadAia: return "missing intermediate (dead AIA)";
    case DefectType::kLeafMismatched: return "leaf mismatched";
    case DefectType::kLeafOther: return "leaf other";
  }
  return "?";
}

bool is_order_defect(DefectType type) {
  switch (type) {
    case DefectType::kDuplicateLeaf:
    case DefectType::kDuplicateIntermediate:
    case DefectType::kDuplicateRoot:
    case DefectType::kIrrelevantRoot:
    case DefectType::kStaleLeaves:
    case DefectType::kIrrelevantOtherChain:
    case DefectType::kIrrelevantIntermediate:
    case DefectType::kMultiplePathsCrossSign:
    case DefectType::kMultiplePathsTwinValidity:
    case DefectType::kReversedSequence:
      return true;
    default:
      return false;
  }
}

bool is_completeness_defect(DefectType type) {
  switch (type) {
    case DefectType::kMissingIntermediate:
    case DefectType::kMissingIntermediateNoAia:
    case DefectType::kMissingIntermediateDeadAia:
      return true;
    default:
      return false;
  }
}

Chain inject_duplicate_leaf(Chain chain) {
  assert(!chain.empty());
  chain.insert(chain.begin() + 1, chain.front());
  return chain;
}

Chain inject_duplicate_intermediate(Chain chain, Rng& rng) {
  // Intermediates sit between the leaf and the (optional) root.
  std::vector<std::size_t> intermediate_positions;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (chain[i]->is_ca() && !chain[i]->is_self_signed()) {
      intermediate_positions.push_back(i);
    }
  }
  if (intermediate_positions.empty()) return chain;
  const std::size_t victim =
      intermediate_positions[rng.below(intermediate_positions.size())];
  chain.push_back(chain[victim]);
  return chain;
}

Chain inject_duplicate_root(Chain chain, const ca::CaHierarchy& hierarchy) {
  const bool has_root =
      !chain.empty() && chain.back()->is_self_signed();
  if (!has_root) chain.push_back(hierarchy.root());
  chain.push_back(chain.back());
  return chain;
}

Chain inject_irrelevant_root(Chain chain, const x509::CertPtr& foreign_root) {
  chain.push_back(foreign_root);
  return chain;
}

Chain inject_stale_leaves(Chain chain, const ca::CaHierarchy& hierarchy,
                          const std::string& domain, int count) {
  assert(!chain.empty());
  // Renewal leftovers: older, mostly expired copies, current first.
  Chain out;
  out.push_back(chain.front());
  for (int i = 0; i < count; ++i) {
    const std::int64_t year = 31557600;
    const std::int64_t start = chain.front()->not_before - (i + 1) * year;
    out.push_back(hierarchy.issue_leaf(domain, start, start + year / 4));
  }
  out.insert(out.end(), chain.begin() + 1, chain.end());
  return out;
}

Chain inject_other_chain(Chain chain, const ca::CaHierarchy& other) {
  // The other administrator's chain fragment: its intermediates plus root.
  for (const x509::CertPtr& cert : other.intermediates()) {
    chain.push_back(cert);
  }
  chain.push_back(other.root());
  return chain;
}

Chain inject_irrelevant_intermediate(Chain chain,
                                     const ca::CaHierarchy& other) {
  chain.push_back(other.intermediates().back());
  return chain;
}

Chain inject_cross_sign_multipath(const std::string& domain, CaZoo& zoo,
                                  const ca::CaHierarchy& hierarchy) {
  // Figure 2c layout: [leaf, intermediates..., CROSS(root by AAA), root].
  // The cross certificate sits *before* the self-signed root it can
  // certify (same subject+key), yielding two leaf paths and a reversed
  // edge — reordering (cross after root) would make the list compliant.
  Chain chain = hierarchy.compliant_chain(hierarchy.issue_leaf(domain));
  chain.push_back(zoo.cross_root_cert(hierarchy));  // cross: misplaced
  chain.push_back(hierarchy.root());
  return chain;
}

Chain inject_twin_validity_multipath(const std::string& domain, CaZoo& zoo,
                                     const ca::CaHierarchy& hierarchy) {
  Chain chain;
  chain.push_back(hierarchy.issue_leaf(domain));
  chain.push_back(hierarchy.intermediates().back());
  chain.push_back(zoo.twin_intermediate(hierarchy));
  return chain;
}

Chain inject_reversed(Chain chain, const ca::CaHierarchy& hierarchy) {
  if (chain.size() == 2) {
    // Single intermediate: the reversed resellers also ship the root in
    // the bundle, so the reversed deployment is [leaf, root, issuing].
    chain.push_back(hierarchy.root());
  }
  if (chain.size() > 2) {
    std::reverse(chain.begin() + 1, chain.end());
  }
  return chain;
}

Chain inject_missing_intermediate(Chain chain, int how_many) {
  // Remove the intermediates nearest the ROOT (the real-world pattern:
  // admins deploy the leaf and its direct issuer but forget the upper
  // tier, e.g. TAIWAN-CA's omitted "TWCA Global Root CA" link). Dropping
  // from the top keeps the remaining certificates connected to the leaf,
  // so the defect registers as *incomplete* rather than *irrelevant*.
  Chain out;
  out.push_back(chain.front());
  std::vector<std::size_t> intermediate_positions;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (chain[i]->is_ca() && !chain[i]->is_self_signed()) {
      intermediate_positions.push_back(i);
    }
  }
  // Intermediates are deployed leaf-side first; the last ones listed are
  // nearest the root.
  const std::size_t keep =
      intermediate_positions.size() >= static_cast<std::size_t>(how_many)
          ? intermediate_positions.size() - static_cast<std::size_t>(how_many)
          : 0;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const bool is_intermediate =
        chain[i]->is_ca() && !chain[i]->is_self_signed();
    if (is_intermediate) {
      // Position among intermediates:
      std::size_t rank = 0;
      while (intermediate_positions[rank] != i) ++rank;
      if (rank >= keep) continue;  // dropped (nearest the root)
    } else if (chain[i]->is_self_signed()) {
      continue;  // a served root above a hole is orphaned; drop it too
    }
    out.push_back(chain[i]);
  }
  return out;
}

Chain make_missing_no_aia(const std::string& domain,
                          const ca::CaHierarchy& hierarchy) {
  x509::CertificateBuilder builder;
  builder.as_leaf(domain).validity(1700000000, 1900000000).no_aia();
  return {builder.sign(hierarchy.issuing_identity())};
}

Chain make_missing_dead_aia(const std::string& domain,
                            const ca::CaHierarchy& hierarchy,
                            net::AiaRepository& aia) {
  const std::string dead_uri = "http://aia-dead.example/" + domain + ".crt";
  aia.mark_unreachable(dead_uri);
  x509::CertificateBuilder builder;
  builder.as_leaf(domain)
      .validity(1700000000, 1900000000)
      .aia_ca_issuers(dead_uri);
  return {builder.sign(hierarchy.issuing_identity())};
}

Chain make_mismatched_leaf_chain(const std::string& domain,
                                 const ca::CaHierarchy& hierarchy,
                                 Rng& rng) {
  (void)domain;  // deliberately not used: the identity mismatches
  const std::string shared_host =
      "shared" + std::to_string(rng.below(500)) + ".webhosting.example";
  x509::CertPtr leaf = hierarchy.issue_leaf(shared_host);
  return hierarchy.compliant_chain(leaf);
}

Chain make_other_leaf_chain(Rng& rng) {
  static const char* kTestCns[] = {"Plesk", "localhost", "testexp",
                                   "SophosApplianceCertificate_ss0000"};
  const std::string cn = kTestCns[rng.below(4)];
  const crypto::RsaKeyPair& keys =
      crypto::KeyPool::instance().for_name("self-signed-junk-" + cn);
  x509::CertificateBuilder builder;
  builder.subject(asn1::Name::make(cn))
      .validity(1700000000, 1900000000)
      .public_key(keys.pub);
  return {builder.self_sign(keys)};
}

}  // namespace chainchaos::dataset
