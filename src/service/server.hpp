// chaind: the loopback TCP analysis daemon (DESIGN.md §5.9).
//
// Architecture, front to back:
//
//   acceptor thread ──► bounded fd queue ──► N worker threads
//        │ (poll+accept)      │ (mutex+cv)        │ (HTTP/1.1 loop)
//        │                    │                   ├─ ResultCache probe
//        └─ queue full:       │                   ├─ RequestHandler
//           503 + Retry-After └─ high-water mark  └─ Metrics
//
// One thread polls the listening socket and enqueues accepted
// connections; when the queue is at capacity the connection is answered
// immediately with 503 + Retry-After and closed — backpressure is
// explicit, not an ever-growing backlog. A fixed pool of workers pops
// connections and speaks HTTP/1.1 keep-alive over them via the net::
// codec, with per-connection read/write deadlines so a stalled peer can
// never pin a worker. stop() is graceful: accepting ends, queued and
// in-flight requests are served to completion, then workers exit.
//
// The server binds 127.0.0.1 only — it is an analysis sidecar, not an
// internet-facing listener.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "service/handlers.hpp"

namespace chainchaos::service {

struct ServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read the bound port from port())
  unsigned workers = 4;
  std::size_t queue_capacity = 64;   ///< pending connections before 503
  std::size_t cache_capacity = 4096; ///< result-cache entries; 0 disables
  std::size_t cache_shards = 8;
  int read_timeout_ms = 5000;   ///< per-request receive deadline
  int write_timeout_ms = 5000;  ///< per-response send deadline
  unsigned retry_after_seconds = 1;  ///< advertised in 503 responses
  HandlerOptions handler;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< stops if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, starts the acceptor and worker threads.
  /// Returns the bound port (the ephemeral one when config.port == 0).
  Result<std::uint16_t> start();

  std::uint16_t port() const { return port_; }
  bool running() const { return started_ && !stopping_.load(); }

  /// Graceful shutdown: stop accepting, serve everything queued and
  /// in-flight, join all threads. Idempotent.
  void stop();

  Metrics& metrics() { return metrics_; }
  CacheStats cache_stats() const { return cache_.stats(); }

 private:
  void acceptor_loop();
  void worker_loop();
  void serve_connection(int fd);

  /// Returns the next queued connection, or -1 once stopping and empty.
  int dequeue();

  ServerConfig config_;
  ResultCache cache_;
  Metrics metrics_;
  RequestHandler handler_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// A queued connection remembers when it was accepted so the dequeue
  /// can charge the wait to the queue-wait histogram (backpressure),
  /// separate from handler time (analysis cost).
  struct QueuedConnection {
    int fd;
    std::chrono::steady_clock::time_point enqueued;
  };

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<QueuedConnection> queue_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace chainchaos::service
