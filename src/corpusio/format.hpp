// Packed corpus wire format (DESIGN.md §5.14): the versioned binary
// on-disk layout shared by CorpusWriter and CorpusReader.
//
// A packed corpus is one file, little-endian throughout:
//
//   [header  | 104 bytes, fixed]
//   [data    | variable-length records, back to back]
//   [env     | the sweep environment: root stores + AIA snapshot]
//   [index   | record_count fixed-width 32-byte entries]
//
// The header carries magic, format version, section offsets/sizes, the
// generating CorpusConfig essentials (seed, domain count, exemplars
// flag) and the file checksum. Each record is the raw DER certificates
// of one domain plus its ground-truth label block, closed by a
// per-record FNV-1a64 checksum; the index entry repeats the checksum
// and a label summary so listings never touch the data section. All
// integers are encoded/decoded via memcpy helpers — nothing in the
// file is ever reinterpret_cast into a struct, so truncated or hostile
// files can only produce typed errors, never UB.
//
// Version policy: the format version is bumped on any layout change;
// readers reject versions they do not know ("corpusio.unsupported_
// version") rather than guessing. Wire values of DefectType are frozen
// at v1 — appending new enum members is compatible, reordering is not.
#pragma once

#include <cstdint>
#include <cstring>

#include "support/bytes.hpp"

namespace chainchaos::corpusio {

/// File magic: 8 bytes at offset 0.
inline constexpr char kMagic[8] = {'C', 'H', 'C', 'O', 'R', 'P', 'U', 'S'};

/// Current (and only) format version.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Fixed header size for version 1.
inline constexpr std::uint32_t kHeaderBytes = 104;

/// Fixed index entry size for version 1.
inline constexpr std::uint32_t kIndexEntryBytes = 32;

/// Largest wire value of dataset::DefectType frozen at v1 (kLeafOther).
inline constexpr std::uint8_t kMaxDefectWire = 15;

/// Record label flag bits.
inline constexpr std::uint8_t kFlagRootIncluded = 1u << 0;
inline constexpr std::uint8_t kFlagRareHierarchy = 1u << 1;
inline constexpr std::uint8_t kFlagAkidlessTerminal = 1u << 2;
inline constexpr std::uint8_t kFlagExclusiveStoreDomain = 1u << 3;
inline constexpr std::uint8_t kFlagExemplar = 1u << 4;

/// Header flag bits.
inline constexpr std::uint32_t kHeaderFlagExemplars = 1u << 0;

// --- FNV-1a 64 --------------------------------------------------------------
// The per-record and whole-file integrity checksum. Not cryptographic —
// it guards against truncation, bit rot and editing mistakes, which is
// what an on-disk measurement corpus needs; tamper evidence is out of
// scope (the threat model is `scp` mishaps, not adversaries).

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a64(std::uint64_t state, BytesView bytes) {
  for (const std::uint8_t b : bytes) {
    state ^= b;
    state *= kFnvPrime;
  }
  return state;
}

inline std::uint64_t fnv1a64(BytesView bytes) {
  return fnv1a64(kFnvOffset, bytes);
}

// --- little-endian append helpers (writer side) -----------------------------

inline void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

inline void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// --- bounds-checked sequential reader (reader side) -------------------------

/// A cursor over a byte range. Every read checks remaining length and
/// fails (returns false) instead of walking past the end; decoders turn
/// a false into a typed truncation error.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Cursor(BytesView bytes) : Cursor(bytes.data(), bytes.size()) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  bool done() const { return offset_ == size_; }

  bool read_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = data_[offset_++];
    return true;
  }

  bool read_u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = static_cast<std::uint16_t>(data_[offset_] |
                                   (data_[offset_ + 1] << 8));
    offset_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    return true;
  }

  /// Views `n` bytes without copying; the view aliases the underlying
  /// buffer (for a reader, the mapped file).
  bool read_view(std::size_t n, BytesView& view) {
    if (remaining() < n) return false;
    view = BytesView(data_ + offset_, n);
    offset_ += n;
    return true;
  }

  bool read_string(std::size_t n, std::string& out) {
    BytesView view;
    if (!read_view(n, view)) return false;
    out.assign(reinterpret_cast<const char*>(view.data()), view.size());
    return true;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// One decoded fixed-width index entry.
struct IndexEntry {
  std::uint64_t offset = 0;    ///< absolute file offset of the record
  std::uint32_t length = 0;    ///< record bytes incl. trailing checksum
  std::uint8_t primary_defect = 0;  ///< label summary (DefectType wire)
  std::uint8_t leaf_defect = 0;
  std::uint8_t flags = 0;           ///< kFlag* bits
  std::uint8_t cert_count = 0;      ///< clamped at 255
  std::uint64_t checksum = 0;       ///< copy of the record checksum
};

inline void encode_index_entry(Bytes& out, const IndexEntry& entry) {
  put_u64(out, entry.offset);
  put_u32(out, entry.length);
  put_u8(out, entry.primary_defect);
  put_u8(out, entry.leaf_defect);
  put_u8(out, entry.flags);
  put_u8(out, entry.cert_count);
  put_u64(out, entry.checksum);
  put_u64(out, 0);  // reserved
}

inline bool decode_index_entry(Cursor& cursor, IndexEntry& entry) {
  std::uint64_t reserved = 0;
  return cursor.read_u64(entry.offset) && cursor.read_u32(entry.length) &&
         cursor.read_u8(entry.primary_defect) &&
         cursor.read_u8(entry.leaf_defect) && cursor.read_u8(entry.flags) &&
         cursor.read_u8(entry.cert_count) && cursor.read_u64(entry.checksum) &&
         cursor.read_u64(reserved);
}

/// The decoded file header.
struct FileHeader {
  std::uint32_t version = kFormatVersion;
  std::uint64_t record_count = 0;
  std::uint64_t data_offset = 0;
  std::uint64_t data_bytes = 0;
  std::uint64_t env_offset = 0;
  std::uint64_t env_bytes = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t index_bytes = 0;
  std::uint64_t seed = 0;            ///< generating CorpusConfig::seed
  std::uint64_t domain_count = 0;    ///< generating domain_count
  std::uint32_t flags = 0;           ///< kHeaderFlag* bits
  std::uint64_t file_checksum = 0;   ///< see writer.cpp for the formula

  bool include_exemplars() const {
    return (flags & kHeaderFlagExemplars) != 0;
  }
};

/// Serializes the header (exactly kHeaderBytes bytes). When
/// `zero_checksum` the checksum field is written as zero — the form the
/// checksum itself is computed over.
inline Bytes encode_header(const FileHeader& header, bool zero_checksum) {
  Bytes out;
  out.reserve(kHeaderBytes);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(out, header.version);
  put_u32(out, kHeaderBytes);
  put_u64(out, header.record_count);
  put_u64(out, header.data_offset);
  put_u64(out, header.data_bytes);
  put_u64(out, header.env_offset);
  put_u64(out, header.env_bytes);
  put_u64(out, header.index_offset);
  put_u64(out, header.index_bytes);
  put_u64(out, header.seed);
  put_u64(out, header.domain_count);
  put_u32(out, header.flags);
  put_u32(out, 0);  // reserved
  put_u64(out, zero_checksum ? 0 : header.file_checksum);
  return out;
}

}  // namespace chainchaos::corpusio
