// chaintrace: pipeline-wide tracing and per-stage profiling (DESIGN.md
// §5.11).
//
// The paper's attribution analyses hinge on knowing *where* a chain's
// cost and verdict come from — parse, analyzers, lint, path building,
// AIA completion — so every pipeline stage opens a Span around its work.
// The design budget is "never slows the sweep":
//
//   * one relaxed atomic load per span site while tracing is off (the
//     default), and the whole subsystem compiles out to literally
//     nothing under -DCHAINCHAOS_OBS=OFF;
//   * when tracing is on, a span is two timestamp reads (rdtsc on
//     x86-64, calibrated against steady_clock once) plus plain stores
//     into a preallocated per-thread buffer — no locks, no allocation,
//     no contention on the hot path;
//   * completed spans additionally land in a per-thread per-stage
//     histogram updated with single-writer relaxed stores (never a
//     lock-prefixed read-modify-write); collectors sum across threads,
//     which is what GET /v1/metrics exports live.
//
// Buffers are append-only: slots are reserved at span start (so a child
// can point at its parent before the parent finishes) and marked done
// with a release store at span end, which lets a collector thread read a
// consistent snapshot mid-flight without stopping the writers. When a
// buffer fills, further spans on that thread are dropped and counted —
// tracing degrades, it never stalls the pipeline.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace chainchaos::obs {

/// Stable stage identities. The enum (not a string) is what span sites
/// record, so per-stage histograms are a flat array and the hot path
/// never hashes a name. to_string() spells the wire/profile name.
enum class Stage : std::uint8_t {
  kPipelineRecord,     ///< one corpus record through the full pipeline
  kX509Parse,          ///< DER -> x509::Certificate
  kChainAnalyze,       ///< ComplianceAnalyzer::analyze (whole)
  kChainLeafPlacement,
  kChainOrder,
  kChainCompleteness,
  kLintChainRules,
  kLintCertRules,
  kPathBuild,          ///< PathBuilder::build (whole)
  kPathStep,           ///< one extend() step (backtracking granularity)
  kAiaFetch,           ///< one AiaRepository::fetch call
  kCryptoVerify,       ///< one crypto::Verifier::verify call
  kEngineSweep,        ///< one engine::run / for_each_shard traversal
  kEngineShard,        ///< one shard execution on a worker
  kEngineSteal,        ///< gap between shards on a worker (cursor/queue)
  kServiceRead,        ///< socket read of one request frame
  kServiceHandle,      ///< RequestHandler::handle
  kServiceWrite,       ///< response serialization + send
  kServiceQueueWait,   ///< accept -> dequeue (histogram-only, cross-thread)
  kClientRequest,      ///< service::Client round trip
  kChaosInput,         ///< one chaos campaign input end to end
  kCount,
};

inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

const char* to_string(Stage stage);

/// One completed (or in-flight) span. Plain data; written by exactly one
/// thread, readable by collectors once `done` is set (release/acquire).
struct SpanRecord {
  std::uint64_t start_ns = 0;  ///< steady clock, relative to tracer epoch
  std::uint64_t end_ns = 0;
  std::uint64_t trace_id = 0;  ///< request/record correlation id; 0 = none
  std::int32_t parent = -1;    ///< slot index in the same thread's buffer
  std::uint32_t thread_id = 0; ///< registration order, dense from 0
  Stage stage = Stage::kCount;
};

/// Snapshot of the per-stage aggregate statistics (counts, total time,
/// log-spaced duration histograms). This is what /v1/metrics exports and
/// it is readable at any time — it is all relaxed atomics underneath.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, kDurationBucketCount> buckets{};
};

using StageStatsSnapshot = std::array<StageStats, kStageCount>;

namespace detail {

/// Per-thread span storage. Registered once per thread with the tracer;
/// the owning thread appends without synchronization beyond the
/// per-record done flag, collectors scan [0, cursor).
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity);

  struct Slot {
    SpanRecord record;
    std::atomic<bool> done{false};
  };

  /// Per-stage aggregates for spans completed on this thread. The owning
  /// thread is the only writer, so updates are relaxed load+store pairs
  /// (plain movs), not atomic RMWs; collectors sum across buffers under
  /// the registry mutex.
  struct StageCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::array<std::atomic<std::uint64_t>, kDurationBucketCount> buckets{};
  };

  std::unique_ptr<Slot[]> slots;
  std::size_t capacity = 0;
  std::atomic<std::size_t> cursor{0};   ///< slots reserved so far
  std::atomic<std::uint64_t> dropped{0};
  std::array<StageCell, kStageCount> stages{};
  std::uint32_t thread_id = 0;

  // Owning-thread-only state (never touched by collectors).
  std::vector<std::int32_t> stack;     ///< open span slots, for parenting
  std::uint64_t trace_id = 0;          ///< current TraceContext value
  std::uint64_t last_span_end_ns = 0;  ///< for steal-gap accounting
};

}  // namespace detail

/// Process-wide tracer. All spans from all threads funnel into it; the
/// singleton keeps instrumentation sites dependency-free (no tracer
/// pointer threaded through every API).
class Tracer {
 public:
  static Tracer& instance();

  /// Runtime switch; starts off. While off, a span site costs one
  /// relaxed load. Enabling mid-run only affects spans opened after.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Spans each thread can hold before dropping (default 1<<18). Takes
  /// effect for threads whose first span comes after the call.
  void set_buffer_capacity(std::size_t capacity);
  std::size_t buffer_capacity() const;

  /// Clears collected spans and stage statistics. Only call while no
  /// instrumented work is in flight (between runs); the live daemon
  /// never resets, it only accumulates.
  void reset();

  /// Snapshot of every completed span, ordered (thread_id, slot index).
  /// Safe to call while writers are appending: in-flight spans are
  /// simply not included yet.
  std::vector<SpanRecord> collect() const;

  /// Spans dropped because a thread buffer filled (visible in exports so
  /// truncated profiles are never mistaken for complete ones).
  std::uint64_t dropped() const;

  StageStatsSnapshot stage_stats() const;

  /// Async-signal-safe view of the registered thread buffers for the
  /// flight recorder: fills `out` with up to `max` buffer pointers and
  /// returns the count. No locks — the registry is mirrored into a
  /// fixed atomic-pointer array at registration, and buffers are never
  /// deallocated (the Tracer singleton is leaked), so every pointer
  /// stays valid for the life of the process.
  static constexpr std::size_t kMaxFlightBuffers = 256;
  std::size_t flight_buffers(const detail::ThreadBuffer** out,
                             std::size_t max) const;

  /// Nanoseconds since the tracer epoch (first use); the time base every
  /// SpanRecord uses.
  static std::uint64_t now_ns();

  /// Records a duration directly into the per-stage histogram without
  /// materializing a span — for cross-thread intervals (queue wait) that
  /// have no single owning stack.
  void record_duration(Stage stage, std::uint64_t duration_ns);

  // --- instrumentation internals (called via ScopedSpan) ---------------
  detail::ThreadBuffer& thread_buffer();
  std::int32_t begin_span(Stage stage);
  void end_span(std::int32_t slot);

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{1u << 18};

  // Registry of all thread buffers ever created (mutex only at thread
  // registration and collection — never on the span path).
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;

  // Lock-free mirror of buffers_ for the flight recorder (signal
  // context cannot take registry_mutex_). Count published with release
  // after the pointer store; threads past kMaxFlightBuffers trace
  // normally but are invisible to crash dumps.
  std::array<std::atomic<const detail::ThreadBuffer*>, kMaxFlightBuffers>
      flight_registry_{};
  std::atomic<std::uint32_t> flight_count_{0};
};

/// RAII span. Inert (and branch-predictably cheap) while tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(Stage stage) {
    if (Tracer::instance().enabled()) {
      slot_ = Tracer::instance().begin_span(stage);
    }
  }
  ~ScopedSpan() {
    if (slot_ >= 0) Tracer::instance().end_span(slot_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is actually recording (tracing on + slot won).
  bool active() const { return slot_ >= 0; }

 private:
  std::int32_t slot_ = -2;  ///< -2 inactive, -1 dropped, >=0 buffer slot
};

/// The no-op stand-in the span macros compile to under
/// -DCHAINCHAOS_OBS=OFF — and the yardstick bench/trace_overhead uses
/// for the compiled-out baseline. Guaranteed zero work.
class NoopSpan {
 public:
  explicit NoopSpan(Stage) {}
  bool active() const { return false; }
};

/// Scoped trace-id: spans opened while alive carry `id` (request
/// correlation across stages). Nesting restores the previous id. Inert
/// while tracing is off (no thread-buffer registration, no stores).
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t id);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t previous_ = 0;
  bool active_ = false;
};

/// FNV-1a of an arbitrary wire trace-id string (x-trace-id headers are
/// client-chosen text; spans need a fixed-width id).
std::uint64_t trace_id_from_string(std::string_view s);

}  // namespace chainchaos::obs

// Span macros: the only spelling instrumentation sites use, so the
// compile-out path is a one-line switch. CHAINCHAOS_OBS_DISABLED is set
// project-wide by -DCHAINCHAOS_OBS=OFF.
#ifdef CHAINCHAOS_OBS_DISABLED
#define CHAINCHAOS_SPAN_NAME2(line) chainchaos_span_##line
#define CHAINCHAOS_SPAN_NAME(line) CHAINCHAOS_SPAN_NAME2(line)
#define CHAINCHAOS_SPAN(stage) \
  ::chainchaos::obs::NoopSpan CHAINCHAOS_SPAN_NAME(__LINE__){stage}
#else
#define CHAINCHAOS_SPAN_NAME2(line) chainchaos_span_##line
#define CHAINCHAOS_SPAN_NAME(line) CHAINCHAOS_SPAN_NAME2(line)
#define CHAINCHAOS_SPAN(stage) \
  ::chainchaos::obs::ScopedSpan CHAINCHAOS_SPAN_NAME(__LINE__){stage}
#endif
