// Certificate-chain completeness analysis (paper §4.3, Tables 7 & 8).
//
// Completeness is *structural*: a list is complete when at least one
// leaf path terminates in a self-signed certificate, or when the
// terminal certificate's direct issuer can be identified as a root —
// via the root store (AKID→SKID probe, per the paper's method, with an
// optional subject-DN fallback) or by downloading it through AIA.
// If the direct issuer cannot be found, or turns out to be another
// intermediate, the chain is missing intermediates; the analyzer then
// probes whether recursive AIA fetching repairs it and records why not
// when it cannot.
//
// The knobs (store choice, AIA on/off, DN fallback) are exactly the
// dimensions of Table 8.
#pragma once

#include <optional>

#include "chain/topology.hpp"
#include "net/aia_repository.hpp"
#include "truststore/root_store.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::chain {

enum class Completeness {
  kCompleteWithRoot,     ///< a leaf path ends in a self-signed root
  kCompleteWithoutRoot,  ///< terminal's direct issuer is a root (omitted)
  kIncomplete,           ///< intermediates missing
};

const char* to_string(Completeness c);

/// Outcome of the AIA repair probe for incomplete chains.
enum class AiaOutcome {
  kNotAttempted,   ///< chain was complete, or AIA disabled
  kCompleted,      ///< recursive fetching reached a root
  kNoAiaField,     ///< terminal certificate has no caIssuers URI
  kUnreachable,    ///< a fetch failed (connection/miss)
  kWrongIssuer,    ///< fetched cert does not actually certify the child
};

const char* to_string(AiaOutcome o);

struct CompletenessOptions {
  const truststore::RootStore* store = nullptr;  ///< required
  net::AiaRepository* aia = nullptr;             ///< may be null
  bool aia_enabled = true;

  /// The paper's store probe matches the terminal's AKID against root
  /// SKIDs only; the library additionally falls back to subject-DN
  /// matching by default. Disable to replicate the paper's method
  /// exactly (this is what makes Table 8's no-AIA column large: chains
  /// whose terminal intermediate lacks an AKID cannot be matched).
  bool match_store_by_dn = true;

  int max_aia_depth = 8;  ///< recursion bound for the repair probe
};

struct CompletenessResult {
  Completeness category = Completeness::kIncomplete;
  AiaOutcome aia_outcome = AiaOutcome::kNotAttempted;

  /// For incomplete chains: intermediates the repair probe had to fetch
  /// (self-signed roots don't count — omitting the root is allowed).
  /// The paper's "missing a single intermediate" (72.2%) statistic is
  /// missing_certificates == 1.
  int missing_certificates = 0;

  bool complete() const { return category != Completeness::kIncomplete; }
};

/// Analyzes completeness of the list (via its topology) against a store.
CompletenessResult analyze_completeness(const Topology& topology,
                                        const CompletenessOptions& options);

/// The direct-issuer store probe (exposed for tests): does `store` hold
/// a self-signed issuer of `cert`, matching by AKID→SKID and optionally
/// by subject DN?
bool store_has_parent_root(const x509::Certificate& cert,
                           const truststore::RootStore& store,
                           bool match_by_dn);

}  // namespace chainchaos::chain
