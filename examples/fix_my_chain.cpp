// fix_my_chain: the §6 server-side recommendations as a tool.
//
// Takes a (possibly non-compliant) served chain and emits the corrected
// deployment: duplicates removed, irrelevant certificates dropped, the
// path re-ordered leaf-to-root, missing intermediates pulled in via AIA,
// and the root omitted per common practice. Prints a before/after
// compliance diff; with a PEM argument, writes the fixed bundle.
//
// Usage:  fix_my_chain [chain.pem [out.pem]]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ca/hierarchy.hpp"
#include "chain/analyzer.hpp"
#include "pathbuild/path_builder.hpp"

using namespace chainchaos;

namespace {

/// The fixer itself: a permissive build (reorder + dedup + backtracking
/// + AIA) yields the path; the corrected deployment is that path minus
/// the trust anchor.
std::vector<x509::CertPtr> fix_chain(const std::vector<x509::CertPtr>& served,
                                     const std::string& hostname,
                                     const truststore::RootStore& store,
                                     net::AiaRepository* aia) {
  pathbuild::BuildPolicy policy;
  policy.aia_completion = aia != nullptr;
  policy.prefer_trusted_root = true;  // §6.2 recommendation
  const pathbuild::PathBuilder builder(policy, &store, aia);
  const pathbuild::BuildResult result = builder.build(served, hostname);
  if (result.path.empty()) return {};

  std::vector<x509::CertPtr> fixed = result.path;
  if (fixed.size() > 1 && fixed.back()->is_self_signed()) {
    fixed.pop_back();  // the root MAY be omitted (RFC 5246 §7.4.2)
  }
  return fixed;
}

void report_line(const char* when, const chain::ComplianceReport& report) {
  std::printf("%s: order %s, completeness %s, overall %s\n", when,
              report.order.any_order_issue() ? "NON-COMPLIANT" : "ok",
              to_string(report.completeness.category),
              report.compliant() ? "COMPLIANT" : "NON-COMPLIANT");
}

}  // namespace

int main(int argc, char** argv) {
  truststore::RootStore store("fixer");
  net::AiaRepository aia;
  std::vector<x509::CertPtr> served;
  std::string hostname;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto parsed = x509::bundle_from_pem(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "PEM parse error: %s\n",
                   parsed.error().to_string().c_str());
      return 1;
    }
    served = std::move(parsed).value();
    for (const x509::CertPtr& cert : served) {
      if (cert->is_self_signed()) store.add(cert);
    }
    hostname = served.empty()
                   ? ""
                   : served.front()->subject.common_name().value_or("");
  } else {
    std::printf("(no PEM given; fixing a built-in GoGetSSL-style "
                "reversed-with-root deployment)\n\n");
    static const ca::CaHierarchy authority =
        ca::CaHierarchy::create("Fixer Demo CA", 2, &aia);
    store.add(authority.root());
    hostname = "fixme.example.com";
    const x509::CertPtr leaf = authority.issue_leaf(hostname);
    // Reversed bundle incl. root, with a duplicated leaf for good measure.
    served = {leaf, leaf, authority.root(),
              authority.intermediates().front(),
              authority.intermediates().back()};
  }

  chain::CompletenessOptions options;
  options.store = &store;
  options.aia = &aia;
  const chain::ComplianceAnalyzer analyzer(options);

  chain::ChainObservation before;
  before.domain = hostname;
  before.certificates = served;
  report_line("before", analyzer.analyze(before));

  const std::vector<x509::CertPtr> fixed =
      fix_chain(served, hostname, store, &aia);
  if (fixed.empty()) {
    std::fprintf(stderr,
                 "could not construct any valid path from the input — is "
                 "the root present or reachable via AIA?\n");
    return 2;
  }

  chain::ChainObservation after;
  after.domain = hostname;
  after.certificates = fixed;
  report_line("after ", analyzer.analyze(after));

  std::printf("\ncorrected deployment order (%zu -> %zu certificates):\n",
              served.size(), fixed.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    std::printf("  [%zu] %s\n", i, fixed[i]->subject.to_string().c_str());
  }

  if (argc > 2) {
    std::ofstream out(argv[2]);
    for (const x509::CertPtr& cert : fixed) out << x509::to_pem(*cert);
    std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
