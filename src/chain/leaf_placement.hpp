// Leaf-certificate placement classifier (paper §3.1 "Leaf certificate
// analysis"; results in Table 3).
//
// RFC 5246/8446 require the server (leaf) certificate to come first in
// the Certificate message, but give no test for leaf-ness; the paper
// classifies by whether the first certificate's CN/SAN matches the
// queried domain, or at least *looks like* a domain or IP.
#pragma once

#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace chainchaos::chain {

enum class LeafPlacement {
  kCorrectMatched,      ///< first cert CN/SAN matches the domain
  kCorrectMismatched,   ///< first cert CN/SAN is domain/IP-shaped, no match
  kIncorrectMatched,    ///< a later cert matches the domain
  kIncorrectMismatched, ///< a later cert is domain/IP-shaped
  kOther,               ///< nothing domain-shaped anywhere (empty CN, test
                        ///< certs like "Plesk"/"localhost", empty chain)
};

const char* to_string(LeafPlacement placement);

/// Classifies a server-provided list against the domain it was collected
/// from, mirroring the paper's decision procedure.
LeafPlacement classify_leaf_placement(const std::vector<x509::CertPtr>& list,
                                      const std::string& domain);

}  // namespace chainchaos::chain
