// Regenerates Table 5: chains with non-compliant issuance order
// (paper: 16,952 domains = 1.9%; duplicates 35.2%, irrelevant 17.9%,
// multiple paths 1.5%, reversed 50.5%).
#include <cstdio>

#include "bench_common.hpp"
#include "chain/order_analysis.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  std::uint64_t noncompliant = 0;
  std::uint64_t duplicates = 0, dup_leaf = 0, dup_int = 0, dup_root = 0;
  std::uint64_t irrelevant = 0, multipath = 0, reversed = 0;
  std::uint64_t all_reversed = 0;
  int max_dup = 0;

  for (const dataset::DomainRecord& record : corpus->records()) {
    const chain::Topology topo =
        chain::Topology::build(record.observation.certificates);
    const chain::OrderAnalysis analysis =
        chain::analyze_order(record.observation.certificates, topo);
    if (!analysis.any_order_issue()) continue;
    ++noncompliant;
    if (analysis.has_duplicates) {
      ++duplicates;
      dup_leaf += analysis.duplicate_leaf;
      dup_int += analysis.duplicate_intermediate;
      dup_root += analysis.duplicate_root;
      max_dup = std::max(max_dup, analysis.max_duplicate_occurrences);
    }
    irrelevant += analysis.has_irrelevant;
    multipath += analysis.multiple_paths;
    reversed += analysis.reversed_sequence;
    all_reversed += analysis.all_paths_reversed;
  }

  const std::uint64_t total = corpus->records().size();

  report::Table table("Table 5: Chains with non-compliant issuance order");
  table.header({"Type", "measured (% of non-compliant)", "paper"});
  table.row({"Duplicate Certificates",
             report::count_pct(duplicates, noncompliant), "5,974 (35.2%)"});
  table.row({"Irrelevant Certificates",
             report::count_pct(irrelevant, noncompliant), "3,032 (17.9%)"});
  table.row({"Multiple Paths", report::count_pct(multipath, noncompliant),
             "246 (1.5%)"});
  table.row({"Reversed Sequences", report::count_pct(reversed, noncompliant),
             "8,566 (50.5%)"});
  table.row({"Total", report::with_commas(noncompliant),
             "16,952 (1.9% of corpus)"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\norder non-compliance rate: %s of %s domains (paper 1.9%%)\n",
              report::pct(static_cast<double>(noncompliant),
                          static_cast<double>(total))
                  .c_str(),
              report::with_commas(total).c_str());
  std::printf("duplicate breakdown: leaf %s, intermediate %s, root %s "
              "(paper 4,730 / 1,354 / 401); max copies of one cert: %d "
              "(paper 26, ns3-style chains reach 29 certs)\n",
              report::with_commas(dup_leaf).c_str(),
              report::with_commas(dup_int).c_str(),
              report::with_commas(dup_root).c_str(), max_dup);
  std::printf("reversed chains where every path is reversed: %s "
              "(paper 8,370 of 8,566)\n",
              report::with_commas(all_reversed).c_str());

  bench::print_paper_note(
      "Table 5",
      "reversed sequences dominate, then duplicates, then irrelevant "
      "certificates; multiple paths are rare");
  return 0;
}
