#include <gtest/gtest.h>

#include "net/aia_repository.hpp"
#include "net/http.hpp"
#include "tls/certificate_message.hpp"
#include "tls/handshake.hpp"
#include "truststore/root_store.hpp"
#include "x509/builder.hpp"

namespace chainchaos {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

struct Pki {
  SigningIdentity root_id = make_identity(asn1::Name::make("TLSNet Root"));
  SigningIdentity inter_id = make_identity(asn1::Name::make("TLSNet Inter"));
  CertPtr root, inter, leaf;

  Pki() {
    CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    root = rb.self_sign(root_id.keys);
    CertificateBuilder ib;
    ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
    inter = ib.sign(root_id);
    CertificateBuilder lb;
    lb.as_leaf("tlsnet.example");
    leaf = lb.sign(inter_id);
  }
};

Pki& pki() {
  static Pki instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Root store
// ---------------------------------------------------------------------------

TEST(RootStoreTest, AddDeduplicatesByFingerprint) {
  truststore::RootStore store("t");
  store.add(pki().root);
  store.add(pki().root);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains(*pki().root));
  EXPECT_FALSE(store.contains(*pki().inter));
}

TEST(RootStoreTest, LookupBySubjectAndKeyId) {
  truststore::RootStore store("t");
  store.add(pki().root);
  EXPECT_EQ(store.find_by_subject(pki().root->subject).size(), 1u);
  EXPECT_TRUE(store.find_by_subject(pki().inter->subject).empty());
  EXPECT_EQ(store.find_by_key_id(*pki().root->subject_key_id).size(), 1u);
  EXPECT_TRUE(store.find_by_key_id(Bytes(20, 0)).empty());
}

TEST(RootStoreTest, MergeDeduplicates) {
  truststore::RootStore a("a"), b("b");
  a.add(pki().root);
  b.add(pki().root);
  const truststore::RootStore merged = a.merged_with(b, "merged");
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.name(), "merged");
}

TEST(RootStoreTest, ProgramStoreMasks) {
  const auto stores = truststore::make_program_stores(
      {pki().root}, {{pki().inter, 1u | 4u}});  // mozilla + microsoft only
  EXPECT_TRUE(stores.mozilla.contains(*pki().inter));
  EXPECT_FALSE(stores.chrome.contains(*pki().inter));
  EXPECT_TRUE(stores.microsoft.contains(*pki().inter));
  EXPECT_FALSE(stores.apple.contains(*pki().inter));
  EXPECT_TRUE(stores.union_store.contains(*pki().inter));
  for (const char* name : {"mozilla", "chrome", "microsoft", "apple", "union"}) {
    EXPECT_TRUE(stores.by_name(name).contains(*pki().root)) << name;
  }
  EXPECT_THROW(stores.by_name("netscape"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AIA repository
// ---------------------------------------------------------------------------

TEST(AiaRepositoryTest, PublishFetchAndStats) {
  net::AiaRepository repo(100);
  repo.publish("http://a/i.crt", pki().inter);

  auto hit = repo.fetch("http://a/i.crt");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(equal(hit.value()->der, pki().inter->der));

  auto miss = repo.fetch("http://a/missing.crt");
  EXPECT_FALSE(miss.ok());
  EXPECT_EQ(miss.error().code, "aia.not_found");

  repo.mark_unreachable("http://a/i.crt");
  auto dead = repo.fetch("http://a/i.crt");
  EXPECT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, "aia.unreachable");

  EXPECT_EQ(repo.stats().attempts, 3u);
  EXPECT_EQ(repo.stats().hits, 1u);
  EXPECT_EQ(repo.stats().misses, 1u);
  EXPECT_EQ(repo.stats().unreachable, 1u);
  EXPECT_EQ(repo.stats().simulated_latency_ms, 300u);
  EXPECT_EQ(repo.stats().bytes_served, pki().inter->der.size());
}

TEST(AiaRepositoryTest, ReachabilityProbe) {
  net::AiaRepository repo;
  EXPECT_FALSE(repo.reachable("http://x"));
  repo.publish("http://x", pki().root);
  EXPECT_TRUE(repo.reachable("http://x"));
  repo.mark_unreachable("http://x");
  EXPECT_FALSE(repo.reachable("http://x"));
  EXPECT_EQ(repo.stats().attempts, 0u);  // reachable() is not a fetch
}

// ---------------------------------------------------------------------------
// TLS Certificate message
// ---------------------------------------------------------------------------

class CertificateMessageTest
    : public ::testing::TestWithParam<tls::TlsVersion> {};

TEST_P(CertificateMessageTest, RoundTripsChain) {
  const std::vector<CertPtr> list = {pki().leaf, pki().inter, pki().root};
  const Bytes message = tls::encode_certificate_message(list, GetParam());
  auto decoded = tls::decode_certificate_message(message, GetParam());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_EQ(decoded.value().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(equal(decoded.value()[i]->der, list[i]->der));
  }
}

TEST_P(CertificateMessageTest, RoundTripsEmptyAndDuplicates) {
  const std::vector<CertPtr> empty;
  auto decoded = tls::decode_certificate_message(
      tls::encode_certificate_message(empty, GetParam()), GetParam());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());

  // The wire format happily carries duplicated certificates.
  const std::vector<CertPtr> dups = {pki().leaf, pki().leaf, pki().leaf};
  auto dup_decoded = tls::decode_certificate_message(
      tls::encode_certificate_message(dups, GetParam()), GetParam());
  ASSERT_TRUE(dup_decoded.ok());
  EXPECT_EQ(dup_decoded.value().size(), 3u);
}

TEST_P(CertificateMessageTest, RejectsTruncation) {
  const std::vector<CertPtr> list = {pki().leaf, pki().inter};
  const Bytes message = tls::encode_certificate_message(list, GetParam());
  for (std::size_t cut : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                          message.size() - 1}) {
    auto decoded = tls::decode_certificate_message(
        BytesView(message.data(), cut), GetParam());
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST_P(CertificateMessageTest, RejectsWrongHandshakeType) {
  Bytes message = tls::encode_certificate_message({pki().leaf}, GetParam());
  message[0] = 0x0e;  // ServerHelloDone
  EXPECT_FALSE(tls::decode_certificate_message(message, GetParam()).ok());
}

TEST_P(CertificateMessageTest, RejectsLengthMismatch) {
  Bytes message = tls::encode_certificate_message({pki().leaf}, GetParam());
  message[3] ^= 0x01;  // corrupt handshake length
  EXPECT_FALSE(tls::decode_certificate_message(message, GetParam()).ok());
}

INSTANTIATE_TEST_SUITE_P(Versions, CertificateMessageTest,
                         ::testing::Values(tls::TlsVersion::kTls12,
                                           tls::TlsVersion::kTls13));

TEST(CertificateMessageTest, Tls13CarriesRequestContext) {
  // TLS 1.3 framing is strictly larger due to context + extension fields.
  const std::vector<CertPtr> list = {pki().leaf};
  const Bytes v12 =
      tls::encode_certificate_message(list, tls::TlsVersion::kTls12);
  const Bytes v13 =
      tls::encode_certificate_message(list, tls::TlsVersion::kTls13);
  EXPECT_EQ(v13.size(), v12.size() + 3);  // 1 ctx len + 2 ext len

  // Cross-version decoding fails (framing differs).
  EXPECT_FALSE(
      tls::decode_certificate_message(v13, tls::TlsVersion::kTls12).ok());
}

// ---------------------------------------------------------------------------
// Handshake simulation
// ---------------------------------------------------------------------------

TEST(HandshakeTest, EndToEndSuccess) {
  truststore::RootStore store("hs");
  store.add(pki().root);
  pathbuild::BuildPolicy policy;  // defaults: reorder + dedup + backtrack
  pathbuild::PathBuilder builder(policy, &store);

  tls::ChainServer server("tlsnet.example", {pki().leaf, pki().inter});
  const tls::HandshakeOutcome outcome = tls::simulate_handshake(server, builder);
  EXPECT_TRUE(outcome.wire_ok);
  EXPECT_TRUE(outcome.connected());
  ASSERT_EQ(outcome.build.path.size(), 3u);  // leaf, inter, store root
}

TEST(HandshakeTest, HostnameMismatchSurfaces) {
  truststore::RootStore store("hs");
  store.add(pki().root);
  pathbuild::PathBuilder builder(pathbuild::BuildPolicy{}, &store);

  tls::ChainServer server("wrong.example", {pki().leaf, pki().inter});
  const tls::HandshakeOutcome outcome = tls::simulate_handshake(server, builder);
  EXPECT_TRUE(outcome.wire_ok);
  EXPECT_FALSE(outcome.connected());
  EXPECT_EQ(outcome.build.status, pathbuild::BuildStatus::kHostnameMismatch);
}

TEST(HandshakeTest, UntrustedRootSurfaces) {
  truststore::RootStore empty_store("empty");
  pathbuild::PathBuilder builder(pathbuild::BuildPolicy{}, &empty_store);

  tls::ChainServer server("tlsnet.example",
                          {pki().leaf, pki().inter, pki().root});
  const tls::HandshakeOutcome outcome = tls::simulate_handshake(server, builder);
  EXPECT_TRUE(outcome.wire_ok);
  EXPECT_EQ(outcome.build.status, pathbuild::BuildStatus::kUntrustedRoot);
}

// ---------------------------------------------------------------------------
// HTTP hardening: crafted bytes against the request parser (the chaind
// service reads these straight off an untrusted loopback socket)
// ---------------------------------------------------------------------------

std::string crafted(const std::string& headers, const std::string& body = {}) {
  return "POST /v1/analyze HTTP/1.1\r\nhost: x\r\n" + headers + "\r\n" + body;
}

TEST(HttpHardeningTest, RejectsOversizedHeaderSection) {
  const std::string raw =
      crafted("x-pad: " + std::string(net::kMaxHeaderBytes, 'a') + "\r\n");
  const auto parsed = net::parse_request(raw);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.headers_too_large");
  // The incremental probe must refuse an unterminated header section as
  // soon as it crosses the cap, without waiting for more bytes
  // (anti-slow-loris).
  EXPECT_FALSE(
      net::probe_request_frame(raw.substr(0, net::kMaxHeaderBytes + 10)).ok());
}

TEST(HttpHardeningTest, RejectsTooManyHeaders) {
  std::string headers;
  for (std::size_t i = 0; i <= net::kMaxHeaderCount; ++i) {
    headers += "x-h" + std::to_string(i) + ": v\r\n";
  }
  const auto parsed = net::parse_request(crafted(headers));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.too_many_headers");
}

TEST(HttpHardeningTest, RejectsNegativeContentLength) {
  // strtoull-style parsing would wrap "-1" to 2^64-1 and try to buffer
  // an 18-exabyte body; the strict digits-only grammar refuses it.
  const auto parsed = net::parse_request(crafted("content-length: -1\r\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.bad_content_length");
}

TEST(HttpHardeningTest, RejectsMalformedContentLengthValues) {
  for (const char* value : {"1x", "+5", " 12", "0x10", "```", ""}) {
    const auto parsed = net::parse_request(
        crafted(std::string("content-length: ") + value + "\r\n"));
    EXPECT_FALSE(parsed.ok()) << "value: '" << value << "'";
  }
}

TEST(HttpHardeningTest, RejectsOverflowingContentLength) {
  // 2^64 + a bit: must be refused, not wrapped.
  const auto wrapped = net::parse_request(
      crafted("content-length: 18446744073709551617\r\n"));
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.error().code, "http.bad_content_length");

  // In-range but over the body cap: also refused, before buffering.
  const auto huge = net::parse_request(crafted(
      "content-length: " + std::to_string(net::kMaxBodyBytes + 1) + "\r\n"));
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.error().code, "http.body_too_large");
  EXPECT_FALSE(net::probe_request_frame(crafted(
                   "content-length: " +
                   std::to_string(net::kMaxBodyBytes + 1) + "\r\n"))
                   .ok());
}

TEST(HttpHardeningTest, RejectsDuplicateContentLength) {
  // Classic request-smuggling vector: two lengths, pick-your-parser.
  const auto parsed = net::parse_request(
      crafted("content-length: 2\r\ncontent-length: 3\r\n", "abc"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.duplicate_content_length");
}

TEST(HttpHardeningTest, RejectsBodyBytesBeyondContentLength) {
  const auto parsed =
      net::parse_request(crafted("content-length: 2\r\n", "abcdef"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "http.trailing_bytes");
}

TEST(HttpHardeningTest, BodyRoundTripsThroughEncodeAndParse) {
  net::HttpRequest request;
  request.method = "POST";
  request.target = "/v1/lint";
  request.host = "127.0.0.1";
  request.body = to_bytes("hello\r\n\r\nworld");  // embedded CRLFCRLF
  const auto parsed = net::parse_request(request.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, "POST");
  EXPECT_EQ(parsed.value().body, request.body);
}

TEST(HttpHardeningTest, ProbeTracksFrameIncrementally) {
  net::HttpRequest request;
  request.method = "POST";
  request.target = "/v1/analyze";
  request.host = "127.0.0.1";
  request.body = to_bytes("0123456789");
  const std::string wire = request.encode();

  // Every strict prefix is incomplete; the full frame is complete with
  // the exact byte count, even with pipelined bytes after it.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto probe = net::probe_request_frame(wire.substr(0, cut));
    ASSERT_TRUE(probe.ok()) << "cut at " << cut;
    EXPECT_FALSE(probe.value().complete) << "cut at " << cut;
  }
  const auto full = net::probe_request_frame(wire + "GET / HTTP/1.1\r\n");
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full.value().complete);
  EXPECT_EQ(full.value().total_bytes, wire.size());
}

}  // namespace
}  // namespace chainchaos
