// The Certificate model: an immutable, parsed X.509 v3 certificate.
//
// Instances are produced either by CertificateBuilder::sign() (synthetic
// issuance) or by parse_certificate() (decoding DER). Both paths populate
// the cached DER encoding and SHA-256 fingerprint, so identity checks
// ("bit-for-bit identical", the paper's duplicate criterion) are O(32B).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asn1/name.hpp"
#include "crypto/bigint.hpp"
#include "crypto/verifier.hpp"
#include "support/bytes.hpp"
#include "support/result.hpp"
#include "x509/extensions.hpp"

namespace chainchaos::x509 {

class Certificate;

/// Certificates are shared immutably between chains, topologies, caches
/// and stores; shared_ptr-to-const is the library-wide handle type.
using CertPtr = std::shared_ptr<const Certificate>;

class Certificate {
 public:
  // --- TBS fields -------------------------------------------------------
  crypto::BigInt serial;
  asn1::Name issuer;
  asn1::Name subject;
  std::int64_t not_before = 0;  ///< unix seconds, inclusive
  std::int64_t not_after = 0;   ///< unix seconds, inclusive
  /// Algorithm-tagged subject key (RSA today; the PQC seam of ROADMAP
  /// item 5 adds members behind the same type, not new Certificate
  /// fields). RsaPublicKey assigns/converts implicitly.
  crypto::PublicKey public_key;

  // --- Extensions (absent optional == extension not present) ------------
  std::optional<BasicConstraints> basic_constraints;
  std::optional<KeyUsage> key_usage;
  std::optional<ExtKeyUsage> ext_key_usage;
  std::optional<Bytes> subject_key_id;
  std::optional<Bytes> authority_key_id;
  std::optional<SubjectAltName> subject_alt_name;
  std::optional<AuthorityInfoAccess> aia;
  std::optional<NameConstraints> name_constraints;

  // --- Signature --------------------------------------------------------
  Bytes signature;  ///< RSA signature over the TBS DER

  // --- Caches (filled by builder/parser) --------------------------------
  Bytes tbs_der;
  Bytes der;
  Bytes fingerprint;  ///< SHA-256 of `der`

  /// True when subject and issuer DNs are equal AND the certificate's own
  /// key verifies its signature (the strict notion of self-signed used by
  /// both the completeness analysis and path building).
  bool is_self_signed() const;

  /// True when subject == issuer (cheaper; "self-issued" in RFC terms).
  bool is_self_issued() const { return subject == issuer; }

  /// Whether the signature verifies under the candidate issuer key.
  /// Routed through crypto::Verifier::current(): the Montgomery fast
  /// path plus whatever verification memo is in scope.
  bool verify_signed_by(const crypto::PublicKey& issuer_key) const;

  /// CA certificate per BasicConstraints (absent extension => not a CA).
  bool is_ca() const {
    return basic_constraints.has_value() && basic_constraints->is_ca;
  }

  /// Validity window check.
  bool valid_at(std::int64_t unix_seconds) const {
    return unix_seconds >= not_before && unix_seconds <= not_after;
  }

  /// True if CN or any SAN entry matches `host` (wildcards honoured).
  bool matches_host(std::string_view host) const;

  /// All identity strings the leaf classifier inspects: CN + SAN entries.
  std::vector<std::string> identity_strings() const;

  /// Short human label for logs/topology dumps: "CN=... (serial)".
  std::string display_name() const;
};

/// Encodes the TBS portion; used by the builder before signing.
Bytes encode_tbs(const Certificate& cert);

/// Encodes the full certificate (requires `signature` to be set);
/// fills nothing — pure function of the fields.
Bytes encode_certificate(const Certificate& cert);

/// Parses DER into a certificate, verifying structural well-formedness
/// (but not the signature — that needs the issuer's key).
Result<CertPtr> parse_certificate(BytesView der);

/// Profile-parameterized parse: the same decoder run under an explicit
/// set of asn1::ParseProfile leniency knobs (BER length tolerance, time
/// and string laxness, trailing-byte and unknown-critical strictness).
/// parse_certificate(der) above is exactly this with the default
/// profile, byte-identical to the historical behaviour. The parsdiff
/// sweep calls this once per profile to build its accept/reject matrix.
Result<CertPtr> parse_certificate(BytesView der,
                                  const asn1::ParseProfile& profile);

/// PEM-style armor ("-----BEGIN CERTIFICATE-----", base64 body). The
/// label matches real PEM so dumps look familiar.
std::string to_pem(const Certificate& cert);
Result<CertPtr> from_pem(std::string_view pem);

/// Parses all certificates in a PEM bundle, in order of appearance.
Result<std::vector<CertPtr>> bundle_from_pem(std::string_view pem);

}  // namespace chainchaos::x509
