// Shared plumbing for the table-regeneration benches.
//
// Every bench binary regenerates one of the paper's tables over a shared
// synthetic corpus. Corpus size comes from the CHAINCHAOS_DOMAINS
// environment variable (default 20,000 ≈ a 1/45 scale Tranco run — all
// reported quantities are rates, so scale only affects noise), the seed
// from CHAINCHAOS_SEED.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataset/corpus.hpp"
#include "report/json.hpp"

namespace chainchaos::bench {

inline dataset::CorpusConfig config_from_env() {
  dataset::CorpusConfig config;
  config.domain_count = 20000;
  if (const char* env = std::getenv("CHAINCHAOS_DOMAINS")) {
    config.domain_count = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("CHAINCHAOS_SEED")) {
    config.seed = std::strtoull(env, nullptr, 10);
  }
  return config;
}

inline std::unique_ptr<dataset::Corpus> make_corpus() {
  dataset::CorpusConfig config = config_from_env();
  std::printf("[corpus] %zu synthetic domains, seed %llu%s\n",
              config.domain_count,
              static_cast<unsigned long long>(config.seed),
              config.include_exemplars ? " (+ exemplars)" : "");
  return std::make_unique<dataset::Corpus>(std::move(config));
}

/// Prints the side-by-side "paper vs measured" footer used by every
/// table bench so EXPERIMENTS.md can be assembled from raw output.
inline void print_paper_note(const char* table, const char* claim) {
  std::printf("\n[paper] %s: %s\n", table, claim);
}

/// `--json FILE` from a bench's argv (the only flag benches accept);
/// nullptr when absent.
inline const char* json_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Machine-readable bench results behind --json FILE: flat name -> number
/// metrics recorded as the run progresses, written as one JSON document
/// at the end so CI can trend records/sec and requests/sec across
/// commits instead of scraping the human tables off stdout.
class JsonReporter {
 public:
  void record(const std::string& name, double value) {
    doubles_.emplace_back(name, value);
  }
  void record_count(const std::string& name, std::uint64_t value) {
    counts_.emplace_back(name, value);
  }

  /// Writes {"bench":...,"ok":...,"metrics":{...}}. Returns false (with
  /// a stderr note) when the file cannot be written.
  bool write(const char* path, const char* bench_name, bool ok) const {
    if (path == nullptr) return true;
    report::JsonWriter w;
    w.begin_object();
    w.key("bench").value(bench_name);
    w.key("ok").value(ok);
    w.key("metrics").begin_object();
    for (const auto& [name, value] : counts_) w.key(name).value(value);
    for (const auto& [name, value] : doubles_) w.key(name).value(value);
    w.end_object();
    w.end_object();
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[json] cannot write %s\n", path);
      return false;
    }
    out << w.take() << "\n";
    std::printf("[json] wrote %s\n", path);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> doubles_;
  std::vector<std::pair<std::string, std::uint64_t>> counts_;
};

}  // namespace chainchaos::bench
