#include <gtest/gtest.h>

#include <sstream>

#include "ca/hierarchy.hpp"
#include "chain/issuance.hpp"
#include "dataset/serialize.hpp"
#include "x509/text.hpp"

namespace chainchaos {
namespace {

// ---------------------------------------------------------------------------
// x509 text rendering
// ---------------------------------------------------------------------------

class TextFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    aia_ = new net::AiaRepository();
    hierarchy_ =
        new ca::CaHierarchy(ca::CaHierarchy::create("Text CA", 1, aia_));
    leaf_ = new x509::CertPtr(hierarchy_->issue_leaf("text.example.com"));
  }
  static net::AiaRepository* aia_;
  static ca::CaHierarchy* hierarchy_;
  static x509::CertPtr* leaf_;
};

net::AiaRepository* TextFixture::aia_ = nullptr;
ca::CaHierarchy* TextFixture::hierarchy_ = nullptr;
x509::CertPtr* TextFixture::leaf_ = nullptr;

TEST_F(TextFixture, FormatTimeKnownValues) {
  EXPECT_EQ(x509::format_time(0), "1970-01-01 00:00:00 UTC");
  EXPECT_EQ(x509::format_time(951782400), "2000-02-29 00:00:00 UTC");
  EXPECT_EQ(x509::format_time(1700000000), "2023-11-14 22:13:20 UTC");
}

TEST_F(TextFixture, LeafDumpMentionsEveryField) {
  const std::string text = x509::to_text(**leaf_);
  EXPECT_NE(text.find("Subject: CN=text.example.com"), std::string::npos);
  EXPECT_NE(text.find("Issuer: CN=Text CA Intermediate CA 1"),
            std::string::npos);
  EXPECT_NE(text.find("RSA Public-Key: (512 bit)"), std::string::npos);
  EXPECT_NE(text.find("Subject Alternative Name"), std::string::npos);
  EXPECT_NE(text.find("DNS:text.example.com"), std::string::npos);
  EXPECT_NE(text.find("Subject Key Identifier"), std::string::npos);
  EXPECT_NE(text.find("Authority Key Identifier"), std::string::npos);
  EXPECT_NE(text.find("CA Issuers - URI:"), std::string::npos);
  EXPECT_NE(text.find("SHA-256 Fingerprint"), std::string::npos);
  // Leaves carry no BasicConstraints in our profile.
  EXPECT_EQ(text.find("CA:TRUE"), std::string::npos);
}

TEST_F(TextFixture, CaDumpShowsConstraints) {
  const std::string text = x509::to_text(*hierarchy_->intermediates().front());
  EXPECT_NE(text.find("CA:TRUE"), std::string::npos);
  EXPECT_NE(text.find("pathlen:0"), std::string::npos);
  EXPECT_NE(text.find("Certificate Sign"), std::string::npos);
}

TEST_F(TextFixture, SummaryLineShowsRole) {
  EXPECT_NE(x509::to_summary_line(**leaf_).find("[leaf,"), std::string::npos);
  EXPECT_NE(x509::to_summary_line(*hierarchy_->root()).find("[root,"),
            std::string::npos);
  EXPECT_NE(x509::to_summary_line(*hierarchy_->intermediates().front())
                .find("[intermediate,"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Corpus serialization
// ---------------------------------------------------------------------------

class SerializeFixture : public ::testing::Test {
 protected:
  static dataset::Corpus& corpus() {
    static dataset::Corpus* instance = [] {
      dataset::CorpusConfig config;
      config.domain_count = 120;
      return new dataset::Corpus(std::move(config));
    }();
    return *instance;
  }
};

TEST_F(SerializeFixture, RoundTripPreservesEverything) {
  std::stringstream buffer;
  dataset::export_corpus(corpus(), buffer);

  auto imported = dataset::import_corpus(buffer);
  ASSERT_TRUE(imported.ok()) << imported.error().to_string();
  ASSERT_EQ(imported.value().size(), corpus().records().size());

  for (std::size_t i = 0; i < imported.value().size(); ++i) {
    const dataset::ExportedRecord& got = imported.value()[i];
    const dataset::DomainRecord& want = corpus().records()[i];
    EXPECT_EQ(got.domain, want.observation.domain);
    EXPECT_EQ(got.ca_name, want.observation.ca_name);
    EXPECT_EQ(got.server_software, want.observation.server_software);
    EXPECT_EQ(got.primary_defect, to_string(want.primary_defect));
    EXPECT_EQ(got.leaf_defect, to_string(want.leaf_defect));
    EXPECT_EQ(got.root_included, want.root_included) << got.domain;
    EXPECT_EQ(got.rare_hierarchy, want.rare_hierarchy) << got.domain;
    EXPECT_EQ(got.akidless_terminal, want.akidless_terminal) << got.domain;
    EXPECT_EQ(got.exclusive_store_domain, want.exclusive_store_domain)
        << got.domain;
    EXPECT_EQ(got.missing_count, want.missing_count) << got.domain;
    ASSERT_EQ(got.certificates.size(), want.observation.certificates.size())
        << got.domain;
    for (std::size_t c = 0; c < got.certificates.size(); ++c) {
      EXPECT_TRUE(equal(got.certificates[c]->der,
                        want.observation.certificates[c]->der));
    }
  }
}

TEST_F(SerializeFixture, ImportedChainsReanalyzeIdentically) {
  std::stringstream buffer;
  dataset::export_corpus(corpus(), buffer);
  auto imported = dataset::import_corpus(buffer);
  ASSERT_TRUE(imported.ok());

  // Issuance relations survive the round trip (signatures reverify).
  for (const auto& record : imported.value()) {
    if (record.certificates.size() < 2) continue;
    if (record.primary_defect != "none") continue;
    EXPECT_TRUE(
        chain::issued_by(*record.certificates[0], *record.certificates[1]))
        << record.domain;
  }
}

TEST_F(SerializeFixture, ImportRejectsMalformedBundles) {
  const auto reject = [](const std::string& text) {
    std::stringstream in(text);
    return !dataset::import_corpus(in).ok();
  };
  EXPECT_TRUE(reject("-----BEGIN CERTIFICATE-----\nAAAA\n"
                     "-----END CERTIFICATE-----\n"));  // orphan cert
  EXPECT_TRUE(reject("#domain only\ttwo\tfields\n"));
  EXPECT_TRUE(reject("#domain a\tb\tc\td\te\n-----BEGIN CERTIFICATE-----\n"));
  EXPECT_TRUE(reject("random noise\n"));
  // 10-field lines with out-of-domain label values.
  EXPECT_TRUE(reject("#domain a\tb\tc\td\te\t2\t0\t0\t0\t0\n"));   // bool = 2
  EXPECT_TRUE(reject("#domain a\tb\tc\td\te\t0\t0\t0\t0\t-1\n"));  // count < 0
  EXPECT_TRUE(reject("#domain a\tb\tc\td\te\t0\t0\t0\t0\tx\n"));   // not a number
  // count above INT_MAX (would truncate through the int field)
  EXPECT_TRUE(reject("#domain a\tb\tc\td\te\t0\t0\t0\t0\t2147483648\n"));
  // 6..9 fields are neither the legacy nor the current arity.
  EXPECT_TRUE(reject("#domain a\tb\tc\td\te\t1\n"));

  // Legacy 5-field lines still import, labels defaulting.
  {
    std::stringstream in("#domain a\tb\tc\tnone\tnone\n");
    auto legacy = dataset::import_corpus(in);
    ASSERT_TRUE(legacy.ok()) << legacy.error().to_string();
    ASSERT_EQ(legacy.value().size(), 1u);
    EXPECT_FALSE(legacy.value()[0].root_included);
    EXPECT_EQ(legacy.value()[0].missing_count, 0);
  }

  std::stringstream empty("");
  auto ok = dataset::import_corpus(empty);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().empty());
}

TEST_F(SerializeFixture, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/chainchaos_corpus_test.pem";
  ASSERT_TRUE(dataset::export_corpus_to_file(corpus(), path));
  auto imported = dataset::import_corpus_from_file(path);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value().size(), corpus().records().size());
  EXPECT_FALSE(dataset::import_corpus_from_file("/no/such/file.pem").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chainchaos
