// Chain normalization: the paper's §6.1 server-side recommendation
// ("implement automated checks during certificate deployment to identify
// and resolve common errors") as an executable deploy-time pass.
//
// Given whatever certificate material an administrator configured, the
// normalizer produces the chain a compliant server *should* serve:
// duplicates removed, certificates re-ordered leaf-to-root by actual
// issuance, and irrelevant certificates dropped — with a human-readable
// record of every correction, suitable for the error/warning surface of
// a web server's config check (`nginx -t`, `apachectl configtest`).
// Missing intermediates cannot be invented locally, so gaps are reported
// rather than repaired (that part of §6.1 falls to the CA's packaging).
#pragma once

#include <string>
#include <vector>

#include "x509/certificate.hpp"

namespace chainchaos::httpserver {

struct NormalizationResult {
  /// The corrected deployment order: leaf first, then issuers.
  std::vector<x509::CertPtr> chain;

  /// Corrections applied, one line each ("removed duplicate of ...").
  std::vector<std::string> fixes;

  /// True when the output chain is contiguous up to a self-signed root
  /// or simply ran out of provided certificates without leftovers that
  /// should have linked. False when a gap was detected.
  bool contiguous = true;

  /// Certificates that could not be placed on the leaf's path.
  std::vector<x509::CertPtr> dropped;

  bool changed() const { return !fixes.empty(); }
};

/// Normalizes a served list. An empty input yields an empty result.
NormalizationResult normalize_chain(const std::vector<x509::CertPtr>& served);

}  // namespace chainchaos::httpserver
