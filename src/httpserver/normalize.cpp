#include "httpserver/normalize.hpp"

#include "chain/issuance.hpp"

namespace chainchaos::httpserver {

NormalizationResult normalize_chain(
    const std::vector<x509::CertPtr>& served) {
  NormalizationResult result;
  if (served.empty()) return result;

  // 1. Deduplicate (first occurrence wins), recording each removal.
  std::vector<x509::CertPtr> unique;
  for (const x509::CertPtr& cert : served) {
    bool seen = false;
    for (const x509::CertPtr& kept : unique) {
      if (equal(kept->fingerprint, cert->fingerprint)) {
        seen = true;
        break;
      }
    }
    if (seen) {
      result.fixes.push_back("removed duplicate of " +
                             cert->subject.to_string());
    } else {
      unique.push_back(cert);
    }
  }

  // 2. Rebuild the issuance order starting from the first certificate
  //    (the leaf — its position is checked by the private-key match, so
  //    we trust it; see Table 4).
  std::vector<bool> used(unique.size(), false);
  result.chain.push_back(unique.front());
  used[0] = true;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    const x509::Certificate& current = *result.chain.back();
    if (current.is_self_signed()) break;  // reached a root
    for (std::size_t i = 0; i < unique.size(); ++i) {
      if (used[i]) continue;
      if (chain::issued_by(current, *unique[i])) {
        result.chain.push_back(unique[i]);
        used[i] = true;
        progressed = true;
        break;
      }
    }
  }

  // Reorder note: emitted when the kept certificates changed positions.
  {
    std::size_t cursor = 0;
    bool reordered = false;
    for (const x509::CertPtr& cert : result.chain) {
      while (cursor < unique.size() &&
             !equal(unique[cursor]->fingerprint, cert->fingerprint)) {
        ++cursor;
        reordered = true;  // skipped over something that sorts later
      }
      if (cursor == unique.size()) {
        reordered = true;
        break;
      }
      ++cursor;
    }
    if (reordered) {
      result.fixes.push_back("re-ordered certificates into issuance order");
    }
  }

  // 3. Leftovers: anything not on the leaf's path gets dropped — unless
  //    it *should* have linked (same issuer DN as the terminal's issuer),
  //    which indicates a gap rather than an irrelevant certificate.
  for (std::size_t i = 0; i < unique.size(); ++i) {
    if (used[i]) continue;
    result.dropped.push_back(unique[i]);
    result.fixes.push_back("dropped irrelevant certificate " +
                           unique[i]->subject.to_string());
  }

  // 4. Gap detection: terminal is neither self-signed nor followed by
  //    anything we can place, and the operator *did* provide further CA
  //    material — or provided nothing above the leaf at all.
  const x509::Certificate& terminal = *result.chain.back();
  if (!terminal.is_self_signed()) {
    // A terminal intermediate is fine (root omission is allowed) but a
    // terminal *leaf* with CA material dropped means a broken link.
    if (!terminal.is_ca() && !result.dropped.empty()) {
      result.contiguous = false;
      result.fixes.push_back(
          "WARNING: provided CA certificates do not certify the leaf — "
          "likely a missing intermediate");
    }
  }
  return result;
}

}  // namespace chainchaos::httpserver
