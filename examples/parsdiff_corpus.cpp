// parsdiff_corpus: the parser-differential sweep over corpus + chaos
// inputs.
//
// Generates a synthetic corpus, derives chaos-mutated wire images from
// it (byte-level classes deterministically seeded, exactly the campaign
// formula), and parses every input under every leniency profile in one
// sharded pass. Prints the accept/reject matrix and per-PD-class counts
// as text tables or JSON. The JSON carries no timing, so output is
// byte-identical for any --threads value — scripts/parsdiff_smoke.sh
// diffs 1 thread against 8.
//
// Usage:  parsdiff_corpus [--domains N] [--chaos M] [--seed S]
//                         [--threads T] [--json] [--corpus corpus.chc]
//
// --corpus streams a packed binary corpus (corpus_pack) via mmap
// instead of generating. Incompatible with --chaos: mutated inputs are
// derived from a live generated corpus, which a packed file replaces.
#include <cstdio>

#include "chaos/mutation.hpp"
#include "cli_common.hpp"
#include "corpusio/source.hpp"
#include "parsdiff/sweep.hpp"

using namespace chainchaos;

namespace {

/// Golden-ratio seed stride — the chaos campaign's spacing, reused so a
/// parsdiff input N is the same bytes a campaign input N would be.
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

/// Derives `count` byte-level mutated inputs from the corpus. Round-
/// robin over B1..B6: the structure-level classes rearrange well-formed
/// certificates, so the parser panel would only re-measure base chains.
std::vector<parsdiff::LabeledInput> derive_chaos_inputs(
    const dataset::Corpus& corpus, std::size_t count, std::uint64_t seed) {
  std::vector<chaos::MutationClass> classes;
  for (const chaos::MutationSpec& s : chaos::all_mutations()) {
    if (s.id[0] == 'B') classes.push_back(s.cls);
  }
  const chaos::ChainMutator mutator = chaos::ChainMutator::from_corpus(corpus);
  std::vector<parsdiff::LabeledInput> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const chaos::MutationClass cls = classes[i % classes.size()];
    chaos::MutatedChain mutated = mutator.mutate(
        cls, seed + kSeedStride * (static_cast<std::uint64_t>(i) + 1));
    parsdiff::LabeledInput input;
    input.label = mutated.mutation_id;
    input.certs = std::move(mutated.certs);
    inputs.push_back(std::move(input));
  }
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t domains = 2000;
  std::size_t chaos_count = 0;
  std::uint64_t seed = 833;
  unsigned threads = 0;
  bool json = false;
  const char* corpus_path = nullptr;
  cli::Flags flags;
  flags.add("--domains", &domains, "N");
  flags.add("--chaos", &chaos_count, "M");
  flags.add("--seed", &seed, "S");
  flags.add("--threads", &threads, "T");
  flags.add("--json", &json);
  flags.add("--corpus", &corpus_path, "FILE");
  if (!flags.parse(argc, argv)) return 1;

  if (corpus_path != nullptr) {
    if (chaos_count > 0) {
      std::fprintf(stderr,
                   "--corpus and --chaos are incompatible (mutated inputs "
                   "need a live generated corpus)\n");
      return 1;
    }
    auto packed = corpusio::PackedCorpus::open(corpus_path);
    if (!packed.ok()) {
      std::fprintf(stderr, "cannot open packed corpus: %s\n",
                   packed.error().to_string().c_str());
      return 1;
    }
    const corpusio::PackedRecordSource source(&packed.value()->reader());
    parsdiff::SweepRequest request;
    request.source = &source;
    request.shards.threads = threads;
    const parsdiff::SweepSummary summary = parsdiff::run_sweep(request);
    if (source.decode_errors() != 0) {
      std::fprintf(stderr, "%llu records failed to decode\n",
                   static_cast<unsigned long long>(source.decode_errors()));
      return 1;
    }
    if (json) {
      std::printf("%s\n", parsdiff::summary_json(summary).c_str());
    } else {
      std::fputs(parsdiff::summary_table(summary).render().c_str(), stdout);
      std::fputs("\n", stdout);
      std::fputs(parsdiff::class_table(summary).render().c_str(), stdout);
      std::printf("\nswept %llu packed inputs on %u threads in %.2fs: "
                  "%llu discrepancies\n",
                  static_cast<unsigned long long>(summary.inputs),
                  summary.threads_used, summary.elapsed_seconds,
                  static_cast<unsigned long long>(summary.discrepancies));
    }
    return 0;
  }

  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  if (!json) {
    std::printf("generating %zu synthetic domains (seed %llu)...\n", domains,
                static_cast<unsigned long long>(seed));
  }
  const dataset::Corpus corpus(std::move(config));

  std::vector<parsdiff::LabeledInput> extra;
  if (chaos_count > 0) {
    if (!json) {
      std::printf("deriving %zu chaos-mutated inputs (B1..B6)...\n",
                  chaos_count);
    }
    extra = derive_chaos_inputs(corpus, chaos_count, seed);
  }

  parsdiff::SweepRequest request;
  request.records = &corpus.records();
  request.extra = extra.empty() ? nullptr : &extra;
  request.shards.threads = threads;
  const parsdiff::SweepSummary summary = parsdiff::run_sweep(request);

  if (json) {
    std::printf("%s\n", parsdiff::summary_json(summary).c_str());
  } else {
    std::fputs(parsdiff::summary_table(summary).render().c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(parsdiff::class_table(summary).render().c_str(), stdout);
    std::printf(
        "\nswept %llu inputs (%llu corpus, %llu chaos) on %u threads in "
        "%.2fs: %llu discrepancies\n",
        static_cast<unsigned long long>(summary.inputs),
        static_cast<unsigned long long>(summary.corpus_chains),
        static_cast<unsigned long long>(summary.extra_inputs),
        summary.threads_used, summary.elapsed_seconds,
        static_cast<unsigned long long>(summary.discrepancies));
  }
  return 0;
}
