// BuildPolicy: the knob vector that turns the single PathBuilder engine
// into any of the paper's 8 TLS clients.
//
// The empirical study (§3.2) found all implementations share a forward-
// construction skeleton and differ along a small set of axes: whether
// they reorder, deduplicate, fetch via AIA or an intermediate cache,
// backtrack, how they rank competing issuer candidates (Table 9's
// VP/KP/KUP/BP codes), and where their length limits sit (constructed
// depth vs input list size — the distinction behind finding I-2).
#pragma once

#include <cstdint>

namespace chainchaos::pathbuild {

/// Validity-based candidate ranking (Table 9 "Validity Priority").
enum class ValidityPriority {
  kFirstListed,          ///< "—": no priority, take candidates in order
  kFirstValid,           ///< VP1: first currently-valid candidate
  kMostRecentThenLongest ///< VP2: latest notBefore, then longest span
};

/// Key-identifier ranking (Table 9 "KID Matching Priority").
enum class KidPriority {
  kNone,                  ///< "—": first listed, KID ignored
  kMatchOrAbsentFirst,    ///< KP1: {match, absent} over mismatch
  kMatchFirst,            ///< KP2: match over absent over mismatch
};

/// KeyUsage ranking (Table 9 "KeyUsage Correctness Priority").
enum class KeyUsagePriority {
  kNone,                 ///< "—": ignored
  kCorrectOrMissingFirst ///< KUP: correct/missing over incorrect
};

/// BasicConstraints ranking (Table 9 "Basic Constraints Priority").
enum class BasicConstraintsPriority {
  kNone,         ///< "—": ignored
  kCorrectFirst  ///< BP: CA with satisfiable pathLen preferred
};

struct BuildPolicy {
  // --- basic capabilities (Table 2 #1-#3) -------------------------------
  bool reorder = true;              ///< false: issuer candidates only from
                                    ///< later list positions (MbedTLS)
  bool eliminate_redundancy = true; ///< drop bit-identical duplicates
  bool aia_completion = false;      ///< fetch missing issuers via AIA
  bool intermediate_cache = false;  ///< Firefox-style cache lookup

  // --- search behaviour ---------------------------------------------------
  bool backtracking = true;  ///< retry alternatives after a dead end
  int max_candidates_per_step = 16;  ///< defensive bound on fan-out
  int max_build_steps = 256;         ///< global work budget (DoS guard)

  // --- AIA fetch robustness ------------------------------------------------
  /// Retry discipline for AIA completion fetches (net::FetchPolicy).
  /// The defaults reproduce the historical single-attempt behaviour;
  /// callers facing flaky repositories (the chaos campaign's injected
  /// transient faults) dial the retries up. Failures that survive the
  /// retry budget degrade to kNoIssuerFound — never a crash or an
  /// unbounded wait (backoff is simulated, deadline-capped).
  int aia_max_retries = 0;   ///< extra attempts after the first
  int aia_backoff_ms = 50;   ///< base of the capped exponential backoff
  int aia_deadline_ms = 0;   ///< per-fetch simulated budget; 0 = unlimited

  // --- restriction settings (Table 2 #8-#9) ------------------------------
  int max_constructed_depth = 0;  ///< max certs in built path; 0 = unlimited
  int max_input_list = 0;         ///< GnuTLS-style cap on the *input list*;
                                  ///< 0 = unlimited
  bool allow_self_signed_leaf = false;

  // --- priority preferences (Table 2 #4-#7) -------------------------------
  ValidityPriority validity_priority = ValidityPriority::kFirstListed;
  KidPriority kid_priority = KidPriority::kNone;
  KeyUsagePriority key_usage_priority = KeyUsagePriority::kNone;
  BasicConstraintsPriority basic_constraints_priority =
      BasicConstraintsPriority::kNone;

  /// Prefer a trusted self-signed root over a same-subject intermediate
  /// (the §6.2 recommendation; reduces wasted construction attempts).
  bool prefer_trusted_root = false;

  // --- validation integration ---------------------------------------------
  /// MbedTLS-style partial validation: check validity windows while
  /// selecting candidates (invalid candidates are skipped during
  /// construction rather than failing afterwards).
  bool partial_validation = false;

  /// Enforce NameConstraints subtrees along the path and a serverAuth-
  /// capable EKU on the leaf (the BetterTLS-side checks of Table 1;
  /// every studied client implements them, so they default on).
  bool check_name_constraints = true;
  bool check_extended_key_usage = true;

  /// "Now" for every validity comparison (unix seconds). Fixed by the
  /// caller so runs are deterministic.
  std::int64_t validation_time = 1800000000;  // 2027-01-15
};

}  // namespace chainchaos::pathbuild
