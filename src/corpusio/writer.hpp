// CorpusWriter: streams a generated corpus into the packed binary
// format (format.hpp).
//
// Usage is append-only: open(), add_record() per domain (records land
// in the data section immediately — nothing but the 32-byte-per-record
// index is buffered, so packing is O(1) memory in the corpus size),
// optional environment material, then finish(), which writes the env
// block, the index, and finally the header with section offsets and
// the file checksum. pack_corpus() bundles the whole recipe for a
// dataset::Corpus, including the AIA snapshot and root-store material
// that lets a later mmap sweep reproduce analysis byte-identically
// without rebuilding the CA zoo.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "corpusio/format.hpp"
#include "dataset/corpus.hpp"
#include "support/result.hpp"

namespace chainchaos::corpusio {

struct PackOptions {
  std::uint64_t seed = 833;
  std::uint64_t domain_count = 0;
  bool include_exemplars = true;
};

class CorpusWriter {
 public:
  CorpusWriter() = default;
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  /// Creates/truncates `path` and writes the header placeholder.
  Result<bool> open(const std::string& path, const PackOptions& options);

  /// Appends one domain record: label block + length-prefixed DER
  /// certificates + record checksum.
  Result<bool> add_record(const dataset::DomainRecord& record);

  // --- environment block (must come after the last add_record) ----------
  /// A root trusted by every program store.
  void add_core_root(const x509::CertPtr& root);
  /// A root trusted by the program subset in `mask` (truststore bits).
  void add_exclusive_root(const x509::CertPtr& root, unsigned mask);
  /// One AIA repository entry (cert may be null for a bare
  /// unreachable marker). Rejects URIs over 64 KiB with
  /// corpusio.oversized_label instead of writing a partial entry.
  Result<bool> add_aia_entry(const std::string& uri,
                             const x509::CertPtr& cert, bool unreachable);

  /// Writes env + index + final header. The writer is unusable after.
  Result<bool> finish();

  std::uint64_t records_written() const { return index_.size(); }
  std::uint64_t bytes_written() const { return body_bytes_ + kHeaderBytes; }

 private:
  /// Appends to the data/env/index body, maintaining the running body
  /// checksum (file order).
  Result<bool> write_body(BytesView bytes);

  std::ofstream out_;
  FileHeader header_;
  std::vector<IndexEntry> index_;
  Bytes env_roots_;        ///< encoded core+exclusive root sub-blocks
  std::uint32_t core_root_count_ = 0;
  Bytes env_exclusive_;
  std::uint32_t exclusive_count_ = 0;
  Bytes env_aia_;
  std::uint32_t aia_count_ = 0;
  std::uint64_t body_bytes_ = 0;   ///< bytes written after the header
  std::uint64_t body_hash_ = kFnvOffset;
  bool finished_ = false;
};

/// Packs `corpus` (records, config essentials, root-store material, AIA
/// snapshot) to `path`. `replicate` appends the record range that many
/// times — the cheap way to build multi-million-record benchmark files
/// out of a modest generated corpus (labels and chains repeat; every
/// record is still independently indexed and checksummed).
Result<bool> pack_corpus(const dataset::Corpus& corpus,
                         const std::string& path, std::size_t replicate = 1);

}  // namespace chainchaos::corpusio
