#include "obs/export.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

namespace chainchaos::obs {

namespace {

/// Nearest-rank quantile over a sorted duration list (exact, unlike the
/// bucket interpolation used for live histograms).
std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

std::vector<StageProfile> aggregate_profile(
    const std::vector<SpanRecord>& spans) {
  std::array<std::vector<std::uint64_t>, kStageCount> durations;
  for (const SpanRecord& span : spans) {
    if (span.stage == Stage::kCount) continue;
    durations[static_cast<std::size_t>(span.stage)].push_back(
        span.end_ns - span.start_ns);
  }

  std::vector<StageProfile> out;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    std::vector<std::uint64_t>& list = durations[s];
    if (list.empty()) continue;
    std::sort(list.begin(), list.end());
    StageProfile profile;
    profile.stage = static_cast<Stage>(s);
    profile.count = list.size();
    for (const std::uint64_t d : list) profile.total_ns += d;
    profile.p50_ns = nearest_rank(list, 0.50);
    profile.p99_ns = nearest_rank(list, 0.99);
    profile.max_ns = list.back();
    out.push_back(profile);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StageProfile& a, const StageProfile& b) {
                     if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
                     return a.stage < b.stage;
                   });
  return out;
}

std::string profile_table(const std::vector<StageProfile>& profile,
                          std::uint64_t wall_ns, unsigned threads) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-22s %10s %12s %10s %10s %7s\n",
                "stage", "count", "total_ms", "p50_us", "p99_us", "%cpu");
  out += line;
  const double denominator =
      static_cast<double>(wall_ns) * (threads == 0 ? 1 : threads);
  for (const StageProfile& stage : profile) {
    const double pct =
        denominator > 0.0
            ? 100.0 * static_cast<double>(stage.total_ns) / denominator
            : 0.0;
    std::snprintf(line, sizeof line,
                  "%-22s %10" PRIu64 " %12.2f %10.1f %10.1f %6.1f%%\n",
                  to_string(stage.stage), stage.count,
                  static_cast<double>(stage.total_ns) / 1e6,
                  static_cast<double>(stage.p50_ns) / 1e3,
                  static_cast<double>(stage.p99_ns) / 1e3, pct);
    out += line;
  }
  return out;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              std::uint64_t dropped) {
  std::string out = "{\"traceEvents\":[";
  char event[256];
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (span.stage == Stage::kCount) continue;
    if (!first) out += ',';
    first = false;
    // Timestamps are microseconds (doubles) per the trace-event spec;
    // keep nanosecond precision in the fraction.
    std::snprintf(event, sizeof event,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%u,\"args\":{\"trace_id\":\"%016" PRIx64
                  "\",\"parent\":%d}}",
                  to_string(span.stage),
                  static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.end_ns - span.start_ns) / 1e3,
                  span.thread_id, span.trace_id, span.parent);
    out += event;
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":\"";
  out += std::to_string(dropped);
  out += "\"}}";
  return out;
}

}  // namespace chainchaos::obs
