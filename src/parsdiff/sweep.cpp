#include "parsdiff/sweep.hpp"

#include <chrono>

#include "report/json.hpp"

namespace chainchaos::parsdiff {

namespace {

constexpr std::string_view kAcceptPrefix = "pd.accept/";
constexpr std::string_view kRejectPrefix = "pd.reject/";
constexpr std::string_view kClassPrefix = "pd.class/";
constexpr std::string_view kLabelPrefix = "pd.label/";
constexpr std::string_view kDiscrepancy = "pd.discrepancy";

/// Folds one input's verdict into a worker tally. `label` is empty for
/// corpus chains.
void account(const ChainDiff& diff, std::string_view label,
             engine::ShardTally& tally) {
  const std::vector<ProfileSpec>& panel = profiles();
  for (std::size_t p = 0; p < panel.size(); ++p) {
    const std::string_view prefix =
        diff.outcomes[p].accepted ? kAcceptPrefix : kRejectPrefix;
    ++tally.counters[std::string(prefix) + std::string(panel[p].name)];
  }
  if (!diff.discrepancy) return;
  ++tally.counters[std::string(kDiscrepancy)];
  ++tally.counters[std::string(kClassPrefix) + std::string(diff.pd_class)];
  if (!label.empty()) {
    ++tally.counters[std::string(kLabelPrefix) + std::string(label) + "/" +
                     std::string(diff.pd_class)];
  }
}

void fold_counters(const std::map<std::string, std::uint64_t>& counters,
                   SweepSummary& summary) {
  for (const auto& [key, count] : counters) {
    const std::string_view k = key;
    if (k == kDiscrepancy) {
      summary.discrepancies += count;
    } else if (k.substr(0, kAcceptPrefix.size()) == kAcceptPrefix) {
      summary.matrix[std::string(k.substr(kAcceptPrefix.size()))].accepted +=
          count;
    } else if (k.substr(0, kRejectPrefix.size()) == kRejectPrefix) {
      summary.matrix[std::string(k.substr(kRejectPrefix.size()))].rejected +=
          count;
    } else if (k.substr(0, kClassPrefix.size()) == kClassPrefix) {
      summary.by_class[std::string(k.substr(kClassPrefix.size()))] += count;
    } else if (k.substr(0, kLabelPrefix.size()) == kLabelPrefix) {
      summary.by_label_class[std::string(k.substr(kLabelPrefix.size()))] +=
          count;
    }
  }
}

}  // namespace

SweepSummary run_sweep(const SweepRequest& request) {
  SweepSummary summary;
  // Every profile appears in the matrix even when zero inputs ran, so
  // renderings have a fixed shape.
  for (const ProfileSpec& spec : profiles()) {
    summary.matrix[std::string(spec.name)] = ProfileTotals{};
  }

  const auto start = std::chrono::steady_clock::now();

  if ((request.records != nullptr && !request.records->empty()) ||
      request.source != nullptr) {
    engine::AnalysisRequest engine_request;
    engine_request.records = request.records;
    engine_request.source = request.source;
    engine_request.shards = request.shards;
    engine_request.per_record = [](const dataset::DomainRecord& record,
                                   std::size_t,
                                   const chain::ComplianceReport*,
                                   engine::ShardTally& tally) {
      std::vector<BytesView> certs;
      certs.reserve(record.observation.certificates.size());
      for (const auto& cert : record.observation.certificates) {
        certs.emplace_back(cert->der);
      }
      account(diff_chain(certs), /*label=*/{}, tally);
    };
    const engine::AnalysisResult result = engine::run(engine_request);
    summary.corpus_chains = result.records_processed;
    summary.threads_used = result.threads_used;
    fold_counters(result.tally.counters, summary);
  }

  if (request.extra != nullptr && !request.extra->empty()) {
    const std::vector<LabeledInput>& extra = *request.extra;
    const unsigned threads = engine::resolve_threads(request.shards.threads);
    std::vector<engine::ShardTally> tallies(threads);
    engine::for_each_shard(
        extra.size(), request.shards,
        [&](std::size_t first, std::size_t last, unsigned worker) {
          engine::ShardTally& tally = tallies[worker];
          for (std::size_t i = first; i < last; ++i) {
            account(diff_chain(extra[i].certs), extra[i].label, tally);
          }
        });
    engine::ShardTally merged;
    for (const engine::ShardTally& tally : tallies) merged.merge(tally);
    summary.extra_inputs = extra.size();
    if (summary.threads_used == 0) summary.threads_used = threads;
    fold_counters(merged.counters, summary);
  }

  summary.inputs = summary.corpus_chains + summary.extra_inputs;
  summary.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return summary;
}

report::Table summary_table(const SweepSummary& summary) {
  report::Table table("parser-differential accept/reject matrix");
  table.header({"profile", "models", "accepted", "rejected"});
  for (const ProfileSpec& spec : profiles()) {
    const auto it = summary.matrix.find(std::string(spec.name));
    const ProfileTotals totals =
        it == summary.matrix.end() ? ProfileTotals{} : it->second;
    table.row({std::string(spec.name), std::string(spec.models),
               report::count_pct(totals.accepted, summary.inputs),
               report::count_pct(totals.rejected, summary.inputs)});
  }
  return table;
}

report::Table class_table(const SweepSummary& summary) {
  report::Table table("discrepancy classes");
  table.header({"class", "severity", "citation", "inputs", "description"});
  for (const lint::Rule& rule : pd_rules()) {
    const auto it = summary.by_class.find(std::string(rule.id));
    const std::uint64_t count = it == summary.by_class.end() ? 0 : it->second;
    table.row({std::string(rule.id), lint::to_string(rule.severity),
               std::string(rule.citation), report::with_commas(count),
               std::string(rule.description)});
  }
  return table;
}

std::string summary_json(const SweepSummary& summary) {
  report::JsonWriter json;
  json.begin_object();
  json.key("inputs").value(summary.inputs);
  json.key("corpus_chains").value(summary.corpus_chains);
  json.key("extra_inputs").value(summary.extra_inputs);
  json.key("discrepancies").value(summary.discrepancies);

  json.key("matrix").begin_array();
  for (const ProfileSpec& spec : profiles()) {
    const auto it = summary.matrix.find(std::string(spec.name));
    const ProfileTotals totals =
        it == summary.matrix.end() ? ProfileTotals{} : it->second;
    json.begin_object();
    json.key("profile").value(spec.name);
    json.key("models").value(spec.models);
    json.key("accepted").value(totals.accepted);
    json.key("rejected").value(totals.rejected);
    json.end_object();
  }
  json.end_array();

  json.key("by_class").begin_object();
  for (const lint::Rule& rule : pd_rules()) {
    const auto it = summary.by_class.find(std::string(rule.id));
    json.key(rule.id).value(it == summary.by_class.end() ? 0 : it->second);
  }
  json.end_object();

  json.key("by_label_class").begin_object();
  for (const auto& [key, count] : summary.by_label_class) {
    json.key(key).value(count);
  }
  json.end_object();

  json.end_object();
  return json.take();
}

}  // namespace chainchaos::parsdiff
