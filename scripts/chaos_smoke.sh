#!/usr/bin/env bash
# End-to-end smoke test for the chaos harness (DESIGN.md §5.10).
#
# Starts chaind on an ephemeral loopback port, runs a small seeded chaos
# campaign through it twice, and asserts:
#   * chaos_run exits 0 both times (crash-free contract held),
#   * the two campaign summaries are byte-identical (determinism),
#   * the daemon survives the whole bombardment and still answers
#     /healthz, then shuts down gracefully on SIGTERM.
#
# Usage: chaos_smoke.sh <chaind-binary> <chaos_run-binary>
set -euo pipefail

CHAIND=${1:?usage: chaos_smoke.sh <chaind> <chaos_run>}
CHAOS_RUN=${2:?usage: chaos_smoke.sh <chaind> <chaos_run>}

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"; [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

PORT_FILE="$WORKDIR/port.txt"

"$CHAIND" --port 0 --port-file "$PORT_FILE" --duration 300 \
    >"$WORKDIR/chaind.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "FAIL: chaind never wrote its port file"; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "chaind is up on 127.0.0.1:$PORT"

# One input per mutation class x 4, through the daemon, twice with the
# same seed. tail -n +2 drops the banner (it echoes the thread flag,
# which is not part of the determinism contract).
run_campaign() {
  "$CHAOS_RUN" --through-daemon --port "$PORT" \
      --seed 833 --count 52 --threads "$1" --domains 60
}
run_campaign 2 | tail -n +2 >"$WORKDIR/run1.txt" \
    || { echo "FAIL: first campaign violated the contract"; exit 1; }
run_campaign 4 | tail -n +2 >"$WORKDIR/run2.txt" \
    || { echo "FAIL: second campaign violated the contract"; exit 1; }

diff -u "$WORKDIR/run1.txt" "$WORKDIR/run2.txt" \
    || { echo "FAIL: same-seed campaigns diverged"; exit 1; }
grep -q "contract=ok" "$WORKDIR/run1.txt" \
    || { echo "FAIL: summary does not attest contract=ok"; exit 1; }
echo "campaign summaries are byte-identical across runs and thread counts"

# The daemon must have survived the bombardment.
kill -0 "$DAEMON_PID" 2>/dev/null \
    || { echo "FAIL: chaind died during the campaign"; exit 1; }

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "FAIL: chaind exited with $RC"; exit 1; }
grep -q "shutting down" "$WORKDIR/chaind.log" \
    || { echo "FAIL: no shutdown banner in chaind log"; exit 1; }

echo "chaos smoke OK"
