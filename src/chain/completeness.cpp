#include "chain/completeness.hpp"

#include <cassert>

#include "chain/issuance.hpp"

namespace chainchaos::chain {

const char* to_string(Completeness c) {
  switch (c) {
    case Completeness::kCompleteWithRoot: return "complete w/ root";
    case Completeness::kCompleteWithoutRoot: return "complete w/o root";
    case Completeness::kIncomplete: return "incomplete";
  }
  return "?";
}

const char* to_string(AiaOutcome o) {
  switch (o) {
    case AiaOutcome::kNotAttempted: return "not attempted";
    case AiaOutcome::kCompleted: return "completed";
    case AiaOutcome::kNoAiaField: return "no AIA field";
    case AiaOutcome::kUnreachable: return "URI unreachable";
    case AiaOutcome::kWrongIssuer: return "wrong issuer served";
  }
  return "?";
}

bool store_has_parent_root(const x509::Certificate& cert,
                           const truststore::RootStore& store,
                           bool match_by_dn) {
  if (cert.authority_key_id.has_value()) {
    for (const x509::CertPtr& root :
         store.find_by_key_id(*cert.authority_key_id)) {
      if (issued_by(cert, *root)) return true;
    }
  }
  if (match_by_dn) {
    for (const x509::CertPtr& root : store.find_by_subject(cert.issuer)) {
      if (issued_by(cert, *root)) return true;
    }
  }
  return false;
}

namespace {

/// Result of the direct-issuer resolution for a terminal certificate.
enum class DirectIssuer {
  kRoot,          ///< issuer identified and self-signed
  kIntermediate,  ///< issuer found via AIA but not self-signed
  kNotFound,
};

struct DirectProbe {
  DirectIssuer kind = DirectIssuer::kNotFound;
  AiaOutcome aia_failure = AiaOutcome::kNotAttempted;  ///< when kNotFound
                                                       ///< and AIA was on
  x509::CertPtr fetched;  ///< set when found via AIA
};

DirectProbe resolve_direct_issuer(const x509::Certificate& terminal,
                                  const CompletenessOptions& options) {
  DirectProbe probe;
  if (store_has_parent_root(terminal, *options.store,
                            options.match_store_by_dn)) {
    probe.kind = DirectIssuer::kRoot;
    return probe;
  }
  if (!options.aia_enabled || options.aia == nullptr) return probe;

  if (!terminal.aia.has_value() || !terminal.aia->ca_issuers_uri.has_value()) {
    probe.aia_failure = AiaOutcome::kNoAiaField;
    return probe;
  }
  auto fetched = options.aia->fetch(*terminal.aia->ca_issuers_uri);
  if (!fetched.ok()) {
    probe.aia_failure = AiaOutcome::kUnreachable;
    return probe;
  }
  const x509::CertPtr& candidate = fetched.value();
  if (equal(candidate->fingerprint, terminal.fingerprint) ||
      !issued_by(terminal, *candidate)) {
    probe.aia_failure = AiaOutcome::kWrongIssuer;
    return probe;
  }
  probe.fetched = candidate;
  probe.kind = candidate->is_self_signed() ? DirectIssuer::kRoot
                                           : DirectIssuer::kIntermediate;
  return probe;
}

struct RepairProbe {
  AiaOutcome outcome = AiaOutcome::kNotAttempted;
  int missing = 0;  ///< non-root certificates that had to be fetched
};

/// Recursive AIA repair: walk issuer-by-issuer until a root (or a parent
/// in the store) is reached.
RepairProbe repair_via_aia(const x509::Certificate& terminal,
                           const CompletenessOptions& options) {
  RepairProbe probe;
  if (!options.aia_enabled || options.aia == nullptr) return probe;

  const x509::Certificate* current = &terminal;
  x509::CertPtr holder;
  for (int depth = 0; depth < options.max_aia_depth; ++depth) {
    if (!current->aia.has_value() ||
        !current->aia->ca_issuers_uri.has_value()) {
      probe.outcome = AiaOutcome::kNoAiaField;
      return probe;
    }
    auto fetched = options.aia->fetch(*current->aia->ca_issuers_uri);
    if (!fetched.ok()) {
      probe.outcome = AiaOutcome::kUnreachable;
      return probe;
    }
    const x509::CertPtr& candidate = fetched.value();
    if (equal(candidate->fingerprint, current->fingerprint) ||
        !issued_by(*current, *candidate)) {
      probe.outcome = AiaOutcome::kWrongIssuer;
      return probe;
    }
    if (candidate->is_self_signed()) {
      // Reached the root: everything fetched before it was a genuinely
      // missing intermediate.
      probe.outcome = AiaOutcome::kCompleted;
      return probe;
    }
    ++probe.missing;
    holder = candidate;
    current = holder.get();
    if (store_has_parent_root(*current, *options.store,
                              options.match_store_by_dn)) {
      probe.outcome = AiaOutcome::kCompleted;
      return probe;
    }
  }
  probe.outcome = AiaOutcome::kUnreachable;  // bound exhausted
  return probe;
}

}  // namespace

CompletenessResult analyze_completeness(const Topology& topology,
                                        const CompletenessOptions& options) {
  assert(options.store != nullptr);
  CompletenessResult result;
  if (topology.empty()) {
    result.category = Completeness::kIncomplete;
    return result;
  }

  bool any_with_root = false;
  bool any_without_root = false;
  std::vector<const x509::Certificate*> incomplete_terminals;
  AiaOutcome first_failure = AiaOutcome::kNotAttempted;

  for (const std::vector<int>& path : topology.paths_from_leaf()) {
    const x509::Certificate& terminal = *topology.node(path.back()).cert;
    if (terminal.is_self_signed()) {
      any_with_root = true;
      continue;
    }
    const DirectProbe probe = resolve_direct_issuer(terminal, options);
    if (probe.kind == DirectIssuer::kRoot) {
      any_without_root = true;
    } else {
      incomplete_terminals.push_back(&terminal);
      if (first_failure == AiaOutcome::kNotAttempted) {
        first_failure = probe.aia_failure;
      }
    }
  }

  if (any_with_root) {
    result.category = Completeness::kCompleteWithRoot;
    return result;
  }
  if (any_without_root) {
    result.category = Completeness::kCompleteWithoutRoot;
    return result;
  }

  result.category = Completeness::kIncomplete;
  // Repair probe: succeed if any path's terminal can be completed.
  RepairProbe best;
  for (const x509::Certificate* terminal : incomplete_terminals) {
    const RepairProbe probe = repair_via_aia(*terminal, options);
    if (probe.outcome == AiaOutcome::kCompleted) {
      best = probe;
      break;
    }
    if (best.outcome == AiaOutcome::kNotAttempted) best = probe;
  }
  result.aia_outcome = best.outcome;
  result.missing_certificates = best.missing;
  if (best.outcome != AiaOutcome::kCompleted) {
    // At least the immediate parent is missing.
    result.missing_certificates = std::max(result.missing_certificates, 1);
  }
  return result;
}

}  // namespace chainchaos::chain
