#include "chain/analyzer.hpp"

#include "obs/trace.hpp"

namespace chainchaos::chain {

ComplianceReport ComplianceAnalyzer::analyze(const ChainObservation& obs) const {
  CHAINCHAOS_SPAN(::chainchaos::obs::Stage::kChainAnalyze);
  const Topology topology = Topology::build(obs.certificates);
  return analyze(obs, topology);
}

ComplianceReport ComplianceAnalyzer::analyze(const ChainObservation& obs,
                                             const Topology& topology) const {
  ComplianceReport report;
  {
    CHAINCHAOS_SPAN(::chainchaos::obs::Stage::kChainLeafPlacement);
    report.leaf_placement =
        classify_leaf_placement(obs.certificates, obs.domain);
  }
  {
    CHAINCHAOS_SPAN(::chainchaos::obs::Stage::kChainOrder);
    report.order = analyze_order(obs.certificates, topology);
  }
  {
    CHAINCHAOS_SPAN(::chainchaos::obs::Stage::kChainCompleteness);
    report.completeness = analyze_completeness(topology, options_);
  }
  return report;
}

}  // namespace chainchaos::chain
