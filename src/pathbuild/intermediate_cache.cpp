#include "pathbuild/intermediate_cache.hpp"

namespace chainchaos::pathbuild {

void IntermediateCache::remember(const x509::CertPtr& cert) {
  if (!cert) return;
  if (!cert->is_ca() || cert->is_self_signed()) return;
  const std::string key(cert->fingerprint.begin(), cert->fingerprint.end());
  if (by_fingerprint_.contains(key)) return;
  by_fingerprint_.emplace(key, cert);
  by_subject_.emplace(cert->subject.to_string(), cert);
}

void IntermediateCache::remember_chain(const std::vector<x509::CertPtr>& chain) {
  for (const x509::CertPtr& cert : chain) remember(cert);
}

std::vector<x509::CertPtr> IntermediateCache::find_by_subject(
    const asn1::Name& issuer_dn) const {
  std::vector<x509::CertPtr> out;
  const auto [first, last] = by_subject_.equal_range(issuer_dn.to_string());
  for (auto it = first; it != last; ++it) out.push_back(it->second);
  return out;
}

void IntermediateCache::clear() {
  by_fingerprint_.clear();
  by_subject_.clear();
}

}  // namespace chainchaos::pathbuild
