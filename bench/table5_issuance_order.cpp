// Regenerates Table 5: chains with non-compliant issuance order
// (paper: 16,952 domains = 1.9%; duplicates 35.2%, irrelevant 17.9%,
// multiple paths 1.5%, reversed 50.5%), measured on the sharded engine.
#include <cstdio>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus->records();
  request.analyzer = &analyzer;
  const engine::AnalysisResult result = engine::run(request);
  const engine::ComplianceTally& tally = result.tally.compliance;

  const std::uint64_t noncompliant = tally.order_noncompliant;
  const std::uint64_t total = tally.total;

  report::Table table("Table 5: Chains with non-compliant issuance order");
  table.header({"Type", "measured (% of non-compliant)", "paper"});
  table.row({"Duplicate Certificates",
             report::count_pct(tally.duplicates, noncompliant),
             "5,974 (35.2%)"});
  table.row({"Irrelevant Certificates",
             report::count_pct(tally.irrelevant, noncompliant),
             "3,032 (17.9%)"});
  table.row({"Multiple Paths",
             report::count_pct(tally.multiple_paths, noncompliant),
             "246 (1.5%)"});
  table.row({"Reversed Sequences",
             report::count_pct(tally.reversed, noncompliant),
             "8,566 (50.5%)"});
  table.row({"Total", report::with_commas(noncompliant),
             "16,952 (1.9% of corpus)"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\norder non-compliance rate: %s of %s domains (paper 1.9%%)\n",
              report::pct(static_cast<double>(noncompliant),
                          static_cast<double>(total))
                  .c_str(),
              report::with_commas(total).c_str());
  std::printf("duplicate breakdown: leaf %s, intermediate %s, root %s "
              "(paper 4,730 / 1,354 / 401); max copies of one cert: %d "
              "(paper 26, ns3-style chains reach 29 certs)\n",
              report::with_commas(tally.duplicate_leaf).c_str(),
              report::with_commas(tally.duplicate_intermediate).c_str(),
              report::with_commas(tally.duplicate_root).c_str(),
              tally.max_duplicate_occurrences);
  std::printf("reversed chains where every path is reversed: %s "
              "(paper 8,370 of 8,566)\n",
              report::with_commas(tally.all_paths_reversed).c_str());

  bench::print_paper_note(
      "Table 5",
      "reversed sequences dominate, then duplicates, then irrelevant "
      "certificates; multiple paths are rare");
  return 0;
}
