// Table 2: the nine chain-construction capability tests.
//
// Each test crafts the certificate list described in the paper and
// infers the client's behaviour from what the engine returns — for the
// priority tests (#4-#7), candidates share subject *and key* (so every
// signature verifies) and differ only in the probed attribute; which
// certificate lands in the constructed path reveals the client's
// ranking, exactly the paper's inference method.
#pragma once

#include <string>
#include <vector>

#include "clients/profiles.hpp"
#include "net/aia_repository.hpp"
#include "pathbuild/intermediate_cache.hpp"
#include "pathbuild/path_builder.hpp"
#include "truststore/root_store.hpp"
#include "x509/builder.hpp"

namespace chainchaos::clients {

/// A full Table 9 row for one client.
struct CapabilityRow {
  std::string client;
  bool order_reorganization = false;
  bool redundancy_elimination = false;
  bool aia_completion = false;
  std::string validity_priority;           ///< "VP1", "VP2", or "-"
  std::string kid_priority;                ///< "KP1", "KP2", or "-"
  std::string key_usage_priority;          ///< "KUP" or "-"
  std::string basic_constraints_priority;  ///< "BP" or "-"
  std::string path_length;                 ///< "=N" or ">N"
  bool self_signed_leaf = false;
};

class CapabilityTester {
 public:
  /// `max_probe_length` bounds test #8 (the paper probed past 52).
  explicit CapabilityTester(int max_probe_length = 52);

  /// Runs all nine tests for one profile.
  CapabilityRow evaluate(const ClientProfile& profile);

  // --- individual tests (exposed for unit tests) -------------------------
  bool test_order_reorganization(const ClientProfile& profile);
  bool test_redundancy_elimination(const ClientProfile& profile);
  /// `cache` may carry pre-seeded intermediates (the Firefox story);
  /// pass nullptr for a cold client.
  bool test_aia_completion(const ClientProfile& profile,
                           pathbuild::IntermediateCache* cache);
  std::string test_validity_priority(const ClientProfile& profile);
  std::string test_kid_priority(const ClientProfile& profile);
  std::string test_key_usage_priority(const ClientProfile& profile);
  std::string test_basic_constraints_priority(const ClientProfile& profile);
  /// Returns the maximum constructible total path length, or
  /// max_probe_length + 1 when no limit was hit (rendered as ">N").
  int test_path_length_limit(const ClientProfile& profile);
  bool test_self_signed_leaf(const ClientProfile& profile);

  /// The intermediate that AIA test #3 resolves (for cache seeding).
  const x509::CertPtr& aia_missing_intermediate() const { return aia_i2_; }

 private:
  pathbuild::BuildResult build(const ClientProfile& profile,
                               const std::vector<x509::CertPtr>& list,
                               const std::string& hostname,
                               pathbuild::IntermediateCache* cache = nullptr);
  void ensure_depth_chain(int levels);

  int max_probe_length_;
  truststore::RootStore store_{"capability-test"};
  net::AiaRepository aia_;

  // Shared fixtures.
  x509::SigningIdentity root_id_;
  x509::CertPtr root_;

  // Test 1/2: a two-intermediate hierarchy.
  x509::SigningIdentity i1_id_, i2_id_;
  x509::CertPtr i1_, i2_, leaf_two_tier_;

  // Test 3: {E, I1} with AIA to I2.
  x509::CertPtr aia_leaf_, aia_i1_, aia_i2_;

  // Test 9: self-signed twin of a leaf.
  x509::CertPtr ss_leaf_, plain_leaf_;

  // Test 8: top-down tower T1 (under root) .. Tn, leaves per depth.
  std::vector<x509::SigningIdentity> tower_ids_;
  std::vector<x509::CertPtr> tower_;
};

}  // namespace chainchaos::clients
