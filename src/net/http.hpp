// Minimal HTTP/1.1 message codec — the transport beneath AIA fetching.
//
// RFC 5280 delivers caIssuers material over plain HTTP, and the paper's
// privacy/security caveats about AIA stem from exactly that. The
// repository therefore speaks real HTTP framing internally: every fetch
// encodes a GET request, routes it to the in-process origin, and parses
// the response — so tests exercise the same encode/parse path a real
// client would, including malformed-response handling.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "support/bytes.hpp"
#include "support/result.hpp"

namespace chainchaos::net {

/// Parsed absolute http:// URL (the only scheme AIA uses in practice —
/// https would be circular).
struct Url {
  std::string host;  ///< may include :port
  std::string path;  ///< always starts with '/'
};

/// Parses "http://host[:port]/path". Rejects other schemes.
Result<Url> parse_url(const std::string& url);

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string host;
  std::map<std::string, std::string> headers;  ///< lower-cased names

  std::string encode() const;
};

Result<HttpRequest> parse_request(const std::string& raw);

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;  ///< lower-cased names
  Bytes body;

  /// Sets Content-Length from the body automatically.
  Bytes encode() const;
};

Result<HttpResponse> parse_response(BytesView raw);

/// Canonical response helpers.
HttpResponse http_ok(Bytes body, const std::string& content_type);
HttpResponse http_not_found();

}  // namespace chainchaos::net
