#include "service/handlers.hpp"

#include "asn1/der.hpp"
#include "chain/analyzer.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verifier.hpp"
#include "lint/lint.hpp"
#include "obs/event_log.hpp"
#include "obs/export.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "parsdiff/diff.hpp"
#include "parsdiff/profile.hpp"
#include "pathbuild/path_builder.hpp"
#include "report/json.hpp"
#include "support/str.hpp"

namespace chainchaos::service {

namespace {

/// "/v1/analyze?domain=x" → path "/v1/analyze", domain "x". Only the
/// `domain` parameter is recognised; values are taken verbatim (hostnames
/// need no percent-decoding).
void split_target(const std::string& target, std::string* path,
                  std::string* domain) {
  const std::size_t q = target.find('?');
  *path = target.substr(0, q);
  if (q == std::string::npos) return;
  for (const std::string& param : split(target.substr(q + 1), '&')) {
    constexpr std::string_view kKey = "domain=";
    if (starts_with(param, kKey)) *domain = param.substr(kKey.size());
  }
}

net::HttpResponse json_body_response(std::string body) {
  net::HttpResponse resp;
  resp.headers["content-type"] = "application/json";
  resp.body = to_bytes(body);
  return resp;
}

void write_lint_findings(report::JsonWriter& w,
                         const std::vector<lint::Finding>& findings) {
  w.key("findings").begin_array();
  for (const lint::Finding& finding : findings) {
    w.begin_object();
    w.key("rule").value(finding.rule->id);
    w.key("severity").value(lint::to_string(finding.rule->severity));
    w.key("cert_index").value(finding.cert_index);
    w.key("detail").value(finding.detail);
    w.end_object();
  }
  w.end_array();
}

/// The /v1/flight body: the in-memory flight window (newest events +
/// spans) as proper JSON — the on-demand sibling of the crash dump,
/// rendered with the ordinary writer since no signal is involved.
std::string render_flight_json() {
  constexpr std::size_t kWindow = 256;
  report::JsonWriter w;
  w.begin_object();
  w.key("events_enabled").value(obs::EventLog::instance().enabled());
  w.key("events").begin_array();
  for (const obs::EventRecord& e :
       obs::EventLog::instance().collect(kWindow)) {
    w.begin_object();
    w.key("seq").value(e.seq);
    w.key("t_ns").value(e.t_ns);
    w.key("level").value(obs::to_string(e.level));
    w.key("kind").value(e.kind);
    w.key("conn").value(e.conn_id);
    w.key("trace").value(e.trace_id);
    w.key("value").value(e.value);
    w.key("detail").value(e.detail);
    w.end_object();
  }
  w.end_array();
  const std::vector<obs::SpanRecord> spans = obs::Tracer::instance().collect();
  const std::size_t first = spans.size() > kWindow ? spans.size() - kWindow : 0;
  w.key("spans").begin_array();
  for (std::size_t i = first; i < spans.size(); ++i) {
    const obs::SpanRecord& s = spans[i];
    w.begin_object();
    w.key("stage").value(obs::to_string(s.stage));
    w.key("thread").value(static_cast<std::uint64_t>(s.thread_id));
    w.key("trace").value(s.trace_id);
    w.key("start_ns").value(s.start_ns);
    w.key("end_ns").value(s.end_ns);
    w.end_object();
  }
  w.end_array();
  w.key("dropped_spans").value(obs::Tracer::instance().dropped());
  w.end_object();
  return w.take();
}

}  // namespace

Result<std::vector<x509::CertPtr>> decode_chain_body(BytesView body) {
  if (body.empty()) return make_error("service.empty_body");
  const std::string text = chainchaos::to_string(body);
  std::vector<x509::CertPtr> chain;
  if (text.find("-----BEGIN CERTIFICATE-----") != std::string::npos) {
    auto bundle = x509::bundle_from_pem(text);
    if (!bundle.ok()) return bundle.error();
    chain = std::move(bundle).value();
  } else {
    // Concatenated DER: each certificate is one top-level SEQUENCE TLV.
    std::size_t offset = 0;
    while (offset < body.size()) {
      asn1::DerReader reader(body.subspan(offset));
      auto elem = reader.read(asn1::Tag::kSequence);
      if (!elem.ok()) return elem.error();
      auto cert = x509::parse_certificate(body.subspan(offset,
                                                       elem.value().size));
      if (!cert.ok()) return cert.error();
      chain.push_back(std::move(cert).value());
      offset += elem.value().size;
    }
  }
  if (chain.empty()) {
    return make_error("service.empty_chain", "no certificates in body");
  }
  return chain;
}

RequestHandler::RequestHandler(HandlerOptions options, ResultCache* cache,
                               Metrics* metrics)
    : options_(options), cache_(cache), metrics_(metrics) {}

net::HttpResponse RequestHandler::handle(const net::HttpRequest& request) {
  std::string path, domain;
  split_target(request.target, &path, &domain);

  if (path == "/healthz") {
    metrics_->record_request(Endpoint::kHealth);
    if (request.method != "GET") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    return json_body_response("{\"status\":\"ok\"}");
  }
  if (path == "/v1/stats") {
    metrics_->record_request(Endpoint::kStats);
    if (request.method != "GET") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    return json_body_response(metrics_->to_json(
        cache_->stats(),
        options_.aia ? options_.aia->stats() : net::FetchStats{},
        crypto::verify_snapshot()));
  }
  if (path == "/v1/metrics") {
    metrics_->record_request(Endpoint::kMetrics);
    if (request.method != "GET") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    // Service counters first, then the tracer's per-stage duration
    // histograms (live even while tracing spans are off — the stage
    // table only fills once tracing is enabled).
    std::string text = metrics_->to_prometheus(
        cache_->stats(),
        options_.aia ? options_.aia->stats() : net::FetchStats{},
        crypto::verify_snapshot());
    text += obs::render_stage_metrics(obs::Tracer::instance().stage_stats());
    text += obs::render_event_metrics();
    net::HttpResponse resp;
    resp.headers["content-type"] = "text/plain; version=0.0.4";
    resp.body = to_bytes(text);
    return resp;
  }
  if (path == "/v1/trace") {
    metrics_->record_request(Endpoint::kTrace);
    if (request.method != "GET") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    return json_body_response(
        obs::chrome_trace_json(obs::Tracer::instance().collect(),
                               obs::Tracer::instance().dropped()));
  }
  if (path == "/v1/timeseries") {
    metrics_->record_request(Endpoint::kTimeseries);
    if (request.method != "GET") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    if (options_.timeseries == nullptr) {
      return json_error(404, "Not Found", "service.no_timeseries",
                        "no time-series ring attached to this handler");
    }
    return json_body_response(options_.timeseries->to_json());
  }
  if (path == "/v1/flight") {
    metrics_->record_request(Endpoint::kFlight);
    if (request.method != "GET") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    return json_body_response(render_flight_json());
  }
  if (path == "/v1/parsdiff") {
    metrics_->record_request(Endpoint::kParsdiff);
    if (request.method != "POST") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    return handle_parsdiff(request);
  }
  if (path == "/v1/analyze" || path == "/v1/lint") {
    const bool full = path == "/v1/analyze";
    metrics_->record_request(full ? Endpoint::kAnalyze : Endpoint::kLint);
    if (request.method != "POST") {
      return json_error(405, "Method Not Allowed", "service.bad_method",
                        request.method);
    }
    return handle_chain_endpoint(request, full);
  }
  metrics_->record_request(Endpoint::kOther);
  return json_error(404, "Not Found", "service.unknown_endpoint", path);
}

net::HttpResponse RequestHandler::handle_chain_endpoint(
    const net::HttpRequest& request, bool full_analysis) {
  std::string path, domain;
  split_target(request.target, &path, &domain);

  auto chain = decode_chain_body(request.body);
  if (!chain.ok()) {
    return json_error(400, "Bad Request", chain.error().code,
                      chain.error().message);
  }

  std::vector<Bytes> ders;
  ders.reserve(chain.value().size());
  for (const x509::CertPtr& cert : chain.value()) ders.push_back(cert->der);
  const Bytes key = result_cache_key(path, domain, ders);

  if (auto cached = cache_->get(key); cached.has_value()) {
    net::HttpResponse resp = json_body_response(std::move(*cached));
    resp.headers["x-cache"] = "hit";
    return resp;
  }

  std::string body = render_chain_report(chain.value(), domain,
                                         full_analysis);
  cache_->put(key, body);
  net::HttpResponse resp = json_body_response(std::move(body));
  resp.headers["x-cache"] = "miss";
  return resp;
}

net::HttpResponse RequestHandler::handle_parsdiff(
    const net::HttpRequest& request) {
  if (request.body.empty()) {
    return json_error(400, "Bad Request", "service.empty_body", "");
  }

  // Lenient split: PEM blocks are base64-decoded without requiring the
  // contents to parse, raw bodies go through the TLV splitter. A body
  // every profile rejects is still a valid differential query.
  std::vector<Bytes> blobs;
  const std::string text = chainchaos::to_string(request.body);
  constexpr std::string_view kBegin = "-----BEGIN CERTIFICATE-----";
  constexpr std::string_view kEnd = "-----END CERTIFICATE-----";
  if (text.find(kBegin) != std::string::npos) {
    std::size_t pos = 0;
    while (true) {
      const std::size_t begin = text.find(kBegin, pos);
      if (begin == std::string::npos) break;
      const std::size_t start = begin + kBegin.size();
      const std::size_t end = text.find(kEnd, start);
      if (end == std::string::npos) break;
      std::string b64;
      for (const char c : text.substr(start, end - start)) {
        if (c != '\n' && c != '\r' && c != ' ' && c != '\t') b64 += c;
      }
      if (auto decoded = base64_decode(b64); decoded.has_value()) {
        blobs.push_back(std::move(*decoded));
      }
      pos = end + kEnd.size();
    }
  } else {
    blobs = parsdiff::split_der_blobs(request.body);
  }
  if (blobs.empty()) {
    return json_error(400, "Bad Request", "service.empty_chain",
                      "no certificate blobs in body");
  }

  const parsdiff::ChainDiff diff = parsdiff::diff_chain(blobs);
  const auto& panel = parsdiff::profiles();
  report::JsonWriter w;
  w.begin_object();
  w.key("certificates").value(static_cast<std::uint64_t>(blobs.size()));
  w.key("discrepancy").value(diff.discrepancy);
  if (diff.discrepancy) {
    w.key("class").value(diff.pd_class);
    if (const lint::Rule* rule = parsdiff::find_pd_rule(diff.pd_class)) {
      w.key("class_description").value(rule->description);
    }
  } else {
    w.key("class").null();
  }
  w.key("profiles").begin_array();
  for (std::size_t p = 0; p < panel.size(); ++p) {
    const parsdiff::ProfileOutcome& outcome = diff.outcomes[p];
    w.begin_object();
    w.key("profile").value(panel[p].name);
    w.key("models").value(panel[p].models);
    w.key("accepted").value(outcome.accepted);
    if (!outcome.accepted) {
      w.key("cert_index")
          .value(static_cast<std::uint64_t>(outcome.cert_index));
      w.key("error").value(outcome.error_code);
      w.key("detail").value(outcome.error_detail);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return json_body_response(w.take());
}

std::string RequestHandler::render_chain_report(
    const std::vector<x509::CertPtr>& chain, const std::string& domain,
    bool full_analysis) const {
  // Anchors: the configured store, or — auto mode — whatever self-signed
  // certificates the request itself carries.
  truststore::RootStore request_store("request");
  const truststore::RootStore* store = options_.roots;
  if (store == nullptr) {
    for (const x509::CertPtr& cert : chain) {
      if (cert->is_self_signed()) request_store.add(cert);
    }
    store = &request_store;
  }

  chain::ChainObservation observation;
  observation.domain = domain;
  observation.certificates = chain;

  chain::CompletenessOptions completeness;
  completeness.store = store;
  completeness.aia_enabled = false;
  const chain::ComplianceAnalyzer analyzer(completeness);
  const chain::ComplianceReport report = analyzer.analyze(observation);

  const lint::Linter linter(lint::LintOptions{options_.now});
  const lint::LintReport lint_report = linter.lint(observation, report);

  report::JsonWriter w;
  w.begin_object();
  w.key("domain").value(domain);
  w.key("certificates").value(static_cast<std::uint64_t>(chain.size()));
  Bytes concatenated;
  for (const x509::CertPtr& cert : chain) append(concatenated, cert->der);
  w.key("chain_sha256").value(
      hex_encode(crypto::Sha256::digest(concatenated)));

  if (full_analysis) {
    w.key("compliant").value(report.compliant());
    w.key("leaf_placement").value(chain::to_string(report.leaf_placement));

    w.key("order").begin_object();
    w.key("compliant").value(report.order.compliant);
    w.key("any_issue").value(report.order.any_order_issue());
    w.key("duplicates").value(report.order.has_duplicates);
    w.key("irrelevant").value(report.order.has_irrelevant);
    w.key("multiple_paths").value(report.order.multiple_paths);
    w.key("reversed").value(report.order.reversed_sequence);
    w.end_object();

    w.key("completeness").begin_object();
    w.key("complete").value(report.completeness.complete());
    w.key("category").value(chain::to_string(report.completeness.category));
    w.key("missing_certificates")
        .value(report.completeness.missing_certificates);
    w.end_object();

    pathbuild::BuildPolicy build_policy;
    if (options_.aia != nullptr) {
      build_policy.aia_completion = true;
      build_policy.aia_max_retries = options_.aia_max_retries;
      build_policy.aia_deadline_ms = options_.aia_deadline_ms;
    }
    pathbuild::PathBuilder builder(build_policy, store, options_.aia);
    builder.set_cache_learning(false);
    const pathbuild::BuildResult build = builder.build(chain, domain);
    w.key("path_build").begin_object();
    w.key("status").value(pathbuild::to_string(build.status));
    w.key("ok").value(build.ok());
    w.key("construction_failure")
        .value(pathbuild::is_construction_failure(build.status));
    w.key("path_length").value(static_cast<std::uint64_t>(build.path.size()));
    w.end_object();

    w.key("lint").begin_object();
    write_lint_findings(w, lint_report.findings);
    w.key("errors").value(
        static_cast<std::uint64_t>(lint_report.count(lint::Severity::kError)));
    w.key("warnings").value(
        static_cast<std::uint64_t>(lint_report.count(lint::Severity::kWarn)));
    w.end_object();
  } else {
    write_lint_findings(w, lint_report.findings);
    w.key("errors").value(
        static_cast<std::uint64_t>(lint_report.count(lint::Severity::kError)));
    w.key("warnings").value(
        static_cast<std::uint64_t>(lint_report.count(lint::Severity::kWarn)));
  }
  w.end_object();
  return w.take();
}

net::HttpResponse json_error(int status, const std::string& reason,
                             const std::string& code,
                             const std::string& detail) {
  report::JsonWriter w;
  w.begin_object();
  w.key("error").value(code);
  w.key("detail").value(detail);
  w.end_object();
  net::HttpResponse resp;
  resp.status = status;
  resp.reason = reason;
  resp.headers["content-type"] = "application/json";
  resp.body = to_bytes(w.take());
  return resp;
}

net::HttpResponse busy_response(unsigned retry_after_seconds) {
  net::HttpResponse resp =
      json_error(503, "Service Unavailable", "service.busy",
                 "request queue full");
  resp.headers["retry-after"] = std::to_string(retry_after_seconds);
  resp.headers["connection"] = "close";
  return resp;
}

}  // namespace chainchaos::service
