// Arbitrary-precision unsigned integers.
//
// Sized for the library's needs: 512-1024-bit RSA moduli. Schoolbook
// multiplication is O(n^2) but n is ~16 limbs, so modular exponentiation
// of a full signature verify costs well under a millisecond — fast enough
// to sign/verify tens of thousands of synthetic certificates per second.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace chainchaos::crypto {

/// Unsigned big integer, little-endian limbs of 32 bits.
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t value);

  /// From big-endian bytes (leading zeros allowed).
  static BigInt from_bytes(BytesView be);

  /// From lower/upper-case hex (no prefix). Empty string -> 0.
  static BigInt from_hex(std::string_view hex);

  /// Uniform value with exactly `bits` bits (msb set). bits >= 2.
  static BigInt random_with_bits(Rng& rng, int bits);

  /// Big-endian bytes, minimal length (0 encodes as single 0x00).
  Bytes to_bytes() const;

  /// Big-endian bytes left-padded with zeros to `width` bytes.
  /// The value must fit.
  Bytes to_bytes_padded(std::size_t width) const;

  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  int bit_length() const;
  bool bit(int i) const;

  /// Value of the low 64 bits.
  std::uint64_t low_u64() const;

  // Comparison. Returns <0, 0, >0.
  static int compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& o) const { return compare(*this, o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(*this, o) != 0; }
  bool operator<(const BigInt& o) const { return compare(*this, o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(*this, o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(*this, o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(*this, o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o.
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator%(const BigInt& m) const;
  /// Floor division.
  BigInt operator/(const BigInt& d) const;
  BigInt operator<<(int bits) const;
  BigInt operator>>(int bits) const;

  /// (base ^ exp) mod m; m must be > 1.
  static BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Greatest common divisor.
  static BigInt gcd(BigInt a, BigInt b);

  /// Modular inverse of a mod m; returns 0 if gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

 private:
  void trim();
  static void divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                     BigInt& rem);

  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
};

}  // namespace chainchaos::crypto
