#include "corpusio/writer.hpp"

#include <algorithm>
#include <limits>

#include "x509/certificate.hpp"

namespace chainchaos::corpusio {

namespace {

/// Encodes a length-prefixed string (u16 length). Strings longer than
/// 64 KiB do not occur in corpus metadata; truncating would corrupt
/// labels, so the caller rejects them instead.
bool put_string16(Bytes& out, const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max()) return false;
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
  return true;
}

constexpr std::uint64_t kMaxU32 = std::numeric_limits<std::uint32_t>::max();

std::uint8_t label_flags(const dataset::DomainRecord& record) {
  std::uint8_t flags = 0;
  if (record.root_included) flags |= kFlagRootIncluded;
  if (record.rare_hierarchy) flags |= kFlagRareHierarchy;
  if (record.akidless_terminal) flags |= kFlagAkidlessTerminal;
  if (record.exclusive_store_domain) flags |= kFlagExclusiveStoreDomain;
  if (record.exemplar) flags |= kFlagExemplar;
  return flags;
}

}  // namespace

Result<bool> CorpusWriter::open(const std::string& path,
                                const PackOptions& options) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) return make_error("corpusio.io", "cannot create " + path);
  header_.seed = options.seed;
  header_.domain_count = options.domain_count;
  header_.flags = options.include_exemplars ? kHeaderFlagExemplars : 0;
  header_.data_offset = kHeaderBytes;
  // Placeholder header; finish() rewrites it with real offsets and the
  // checksum. Written as zeros so a crashed pack never validates.
  const Bytes placeholder(kHeaderBytes, 0);
  out_.write(reinterpret_cast<const char*>(placeholder.data()),
             static_cast<std::streamsize>(placeholder.size()));
  if (!out_) return make_error("corpusio.io", "header write failed");
  return true;
}

Result<bool> CorpusWriter::write_body(BytesView bytes) {
  body_hash_ = fnv1a64(body_hash_, bytes);
  body_bytes_ += bytes.size();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out_) return make_error("corpusio.io", "body write failed");
  return true;
}

Result<bool> CorpusWriter::add_record(const dataset::DomainRecord& record) {
  if (finished_ || !out_.is_open()) {
    return make_error("corpusio.io", "writer is not open");
  }
  if (env_roots_.size() + env_exclusive_.size() + env_aia_.size() > 0) {
    return make_error("corpusio.io", "records must precede environment");
  }
  const chain::ChainObservation& obs = record.observation;

  Bytes blob;
  // --- label block, length-prefixed so future versions can grow it ----
  Bytes labels;
  put_u8(labels, static_cast<std::uint8_t>(record.primary_defect));
  put_u8(labels, static_cast<std::uint8_t>(record.leaf_defect));
  put_u8(labels, label_flags(record));
  put_u8(labels, 0);  // reserved
  put_u32(labels, static_cast<std::uint32_t>(record.missing_count));
  if (!put_string16(labels, obs.domain) ||
      !put_string16(labels, obs.ca_name) ||
      !put_string16(labels, obs.server_software) ||
      !put_string16(labels, record.exemplar_name)) {
    return make_error("corpusio.oversized_label", obs.domain);
  }
  put_u32(blob, static_cast<std::uint32_t>(labels.size()));
  append(blob, labels);

  // --- certificates, raw DER, length-prefixed -------------------------
  put_u32(blob, static_cast<std::uint32_t>(obs.certificates.size()));
  for (const x509::CertPtr& cert : obs.certificates) {
    if (!cert) return make_error("corpusio.null_certificate", obs.domain);
    if (cert->der.size() > kMaxU32) {
      return make_error("corpusio.oversized_record",
                        obs.domain + ": certificate DER exceeds 4 GiB");
    }
    put_u32(blob, static_cast<std::uint32_t>(cert->der.size()));
    append(blob, cert->der);
  }
  // +8 for the trailing checksum, which entry.length includes. This
  // also bounds the cert-count field: a count that could wrap its u32
  // implies a blob at least 4x this large.
  if (blob.size() + 8 > kMaxU32) {
    return make_error("corpusio.oversized_record",
                      obs.domain + ": record exceeds 4 GiB");
  }

  const std::uint64_t checksum = fnv1a64(blob);
  put_u64(blob, checksum);

  IndexEntry entry;
  entry.offset = kHeaderBytes + body_bytes_;
  entry.length = static_cast<std::uint32_t>(blob.size());
  entry.primary_defect = static_cast<std::uint8_t>(record.primary_defect);
  entry.leaf_defect = static_cast<std::uint8_t>(record.leaf_defect);
  entry.flags = label_flags(record);
  entry.cert_count = static_cast<std::uint8_t>(
      std::min<std::size_t>(obs.certificates.size(), 255));
  entry.checksum = checksum;

  auto written = write_body(blob);
  if (!written.ok()) return written.error();
  index_.push_back(entry);
  return true;
}

void CorpusWriter::add_core_root(const x509::CertPtr& root) {
  put_u32(env_roots_, static_cast<std::uint32_t>(root->der.size()));
  append(env_roots_, root->der);
  ++core_root_count_;
}

void CorpusWriter::add_exclusive_root(const x509::CertPtr& root,
                                      unsigned mask) {
  put_u32(env_exclusive_, static_cast<std::uint32_t>(mask));
  put_u32(env_exclusive_, static_cast<std::uint32_t>(root->der.size()));
  append(env_exclusive_, root->der);
  ++exclusive_count_;
}

Result<bool> CorpusWriter::add_aia_entry(const std::string& uri,
                                         const x509::CertPtr& cert,
                                         bool unreachable) {
  // Staged in a local buffer: on rejection nothing lands in env_aia_,
  // so a partial entry can never desynchronise the entries after it.
  Bytes entry;
  std::uint8_t flags = 0;
  if (cert) flags |= 1;
  if (unreachable) flags |= 2;
  put_u8(entry, flags);
  if (!put_string16(entry, uri)) {
    return make_error("corpusio.oversized_label",
                      "AIA URI longer than 64 KiB: " + uri.substr(0, 64) +
                          "...");
  }
  if (cert) {
    if (cert->der.size() > kMaxU32) {
      return make_error("corpusio.oversized_record",
                        "AIA certificate DER exceeds 4 GiB");
    }
    put_u32(entry, static_cast<std::uint32_t>(cert->der.size()));
    append(entry, cert->der);
  }
  append(env_aia_, entry);
  ++aia_count_;
  return true;
}

Result<bool> CorpusWriter::finish() {
  if (finished_ || !out_.is_open()) {
    return make_error("corpusio.io", "writer is not open");
  }
  finished_ = true;
  header_.record_count = index_.size();
  header_.data_bytes = body_bytes_;

  // --- environment block ----------------------------------------------
  header_.env_offset = kHeaderBytes + body_bytes_;
  Bytes env;
  put_u32(env, core_root_count_);
  append(env, env_roots_);
  put_u32(env, exclusive_count_);
  append(env, env_exclusive_);
  put_u32(env, aia_count_);
  append(env, env_aia_);
  auto written = write_body(env);
  if (!written.ok()) return written.error();
  header_.env_bytes = env.size();

  // --- index ----------------------------------------------------------
  header_.index_offset = kHeaderBytes + body_bytes_;
  Bytes index;
  index.reserve(index_.size() * kIndexEntryBytes);
  for (const IndexEntry& entry : index_) encode_index_entry(index, entry);
  written = write_body(index);
  if (!written.ok()) return written.error();
  header_.index_bytes = index.size();

  // --- header + checksum ----------------------------------------------
  // The file checksum covers the header (checksum field zeroed) followed
  // by the running hash of every body byte in file order; folding the
  // body in via its own digest lets the writer stream the body before
  // the header fields are final.
  std::uint64_t checksum = fnv1a64(encode_header(header_, true));
  Bytes body_digest;
  put_u64(body_digest, body_hash_);
  checksum = fnv1a64(checksum, body_digest);
  header_.file_checksum = checksum;

  out_.seekp(0);
  const Bytes head = encode_header(header_, false);
  out_.write(reinterpret_cast<const char*>(head.data()),
             static_cast<std::streamsize>(head.size()));
  out_.flush();
  if (!out_) return make_error("corpusio.io", "header rewrite failed");
  out_.close();
  return true;
}

Result<bool> pack_corpus(const dataset::Corpus& corpus,
                         const std::string& path, std::size_t replicate) {
  if (replicate == 0) replicate = 1;
  CorpusWriter writer;
  PackOptions options;
  options.seed = corpus.config().seed;
  options.domain_count = corpus.config().domain_count;
  options.include_exemplars = corpus.config().include_exemplars;
  auto opened = writer.open(path, options);
  if (!opened.ok()) return opened.error();

  for (std::size_t round = 0; round < replicate; ++round) {
    for (const dataset::DomainRecord& record : corpus.records()) {
      auto added = writer.add_record(record);
      if (!added.ok()) return added.error();
    }
  }

  for (const x509::CertPtr& root : corpus.zoo().core_roots()) {
    writer.add_core_root(root);
  }
  for (const auto& [root, mask] : corpus.zoo().exclusive_roots()) {
    writer.add_exclusive_root(root, mask);
  }
  for (const net::AiaEntrySnapshot& entry :
       corpus.aia().snapshot_entries()) {
    auto added = writer.add_aia_entry(entry.uri, entry.cert,
                                      entry.unreachable);
    if (!added.ok()) return added.error();
  }
  return writer.finish();
}

}  // namespace chainchaos::corpusio
