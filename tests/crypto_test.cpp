#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace chainchaos::crypto {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST CAVS vectors)
// ---------------------------------------------------------------------------

struct ShaVector {
  const char* message;
  const char* digest_hex;
};

class Sha256VectorTest : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256VectorTest, MatchesKnownDigest) {
  const Bytes digest = Sha256::digest(to_bytes(GetParam().message));
  EXPECT_EQ(hex_encode(digest), GetParam().digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256VectorTest,
    ::testing::Values(
        ShaVector{"",
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaVector{"abc",
                  "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const auto digest = ctx.finish();
  EXPECT_EQ(hex_encode(BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  const Bytes data = to_bytes("hello incremental world, block boundaries!");
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    Sha256 ctx;
    ctx.update(BytesView(data.data(), cut));
    ctx.update(BytesView(data.data() + cut, data.size() - cut));
    const auto digest = ctx.finish();
    EXPECT_TRUE(equal(BytesView(digest.data(), digest.size()),
                      Sha256::digest(data)))
        << "cut=" << cut;
  }
}

TEST(Sha256Test, BlockBoundaryLengths) {
  // Lengths straddling the 55/56/64-byte padding edges.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes data(len, 0x5a);
    Sha256 ctx;
    ctx.update(data);
    const auto incremental = ctx.finish();
    EXPECT_TRUE(equal(BytesView(incremental.data(), incremental.size()),
                      Sha256::digest(data)))
        << "len=" << len;
  }
}

TEST(HmacTest, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: short key.
  EXPECT_EQ(hex_encode(hmac_sha256(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 6: key longer than a block.
  const Bytes long_key(131, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha256(
                long_key, to_bytes("Test Using Larger Than Block-Size Key - "
                                   "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// BigInt
// ---------------------------------------------------------------------------

TEST(BigIntTest, ConstructionAndBytes) {
  EXPECT_TRUE(BigInt().is_zero());
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_EQ(BigInt(1).to_hex(), "01");
  EXPECT_EQ(BigInt(0xdeadbeefULL).to_hex(), "deadbeef");
  EXPECT_EQ(BigInt(0x1122334455667788ULL).to_hex(), "1122334455667788");
  EXPECT_EQ(BigInt().to_hex(), "00");
}

TEST(BigIntTest, FromBytesIgnoresLeadingZeros) {
  EXPECT_EQ(BigInt::from_bytes(Bytes{0, 0, 0x12, 0x34}).to_hex(), "1234");
  EXPECT_TRUE(BigInt::from_bytes(Bytes{0, 0, 0}).is_zero());
}

TEST(BigIntTest, PaddedBytes) {
  EXPECT_EQ(BigInt(0x1234).to_bytes_padded(4), (Bytes{0, 0, 0x12, 0x34}));
  EXPECT_EQ(BigInt().to_bytes_padded(2), (Bytes{0, 0}));
  EXPECT_THROW(BigInt(0x123456).to_bytes_padded(2), std::invalid_argument);
}

TEST(BigIntTest, ComparisonOrdering) {
  const BigInt a(100), b(200);
  const BigInt big = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_GT(big, b);
  EXPECT_EQ(BigInt::compare(a, a), 0);
  EXPECT_LE(a, a);
  EXPECT_GE(big, big);
}

TEST(BigIntTest, AdditionWithCarryChains) {
  const BigInt max32 = BigInt::from_hex("ffffffff");
  EXPECT_EQ((max32 + BigInt(1)).to_hex(), "0100000000");
  const BigInt max128 = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((max128 + BigInt(1)).to_hex(), "0100000000000000000000000000000000");
  EXPECT_EQ((BigInt(0) + BigInt(0)).to_hex(), "00");
}

TEST(BigIntTest, SubtractionWithBorrowChains) {
  const BigInt big = BigInt::from_hex("0100000000000000000000000000000000");
  EXPECT_EQ((big - BigInt(1)).to_hex(), "ffffffffffffffffffffffffffffffff");
  EXPECT_TRUE((big - big).is_zero());
}

TEST(BigIntTest, MultiplicationKnownValues) {
  EXPECT_EQ((BigInt(0xffffffffULL) * BigInt(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  const BigInt a = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  const BigInt b = BigInt::from_hex("0fedcba987654321");
  // python: hex(a * b)
  EXPECT_EQ((a * b).to_hex(),
            "0121fa00ad77d7423212849961ef529ccdeec6cd7a44a410");
  EXPECT_TRUE((a * BigInt(0)).is_zero());
}

TEST(BigIntTest, ShiftOperators) {
  const BigInt one(1);
  EXPECT_EQ((one << 0).to_hex(), "01");
  EXPECT_EQ((one << 8).to_hex(), "0100");
  EXPECT_EQ((one << 33).to_hex(), "0200000000");
  EXPECT_EQ(((one << 129) >> 129).to_hex(), "01");
  EXPECT_TRUE((one >> 1).is_zero());
  const BigInt v = BigInt::from_hex("deadbeefcafebabe");
  EXPECT_EQ(((v << 17) >> 17), v);
}

TEST(BigIntTest, DivisionAndModulo) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe1234567890abcdef");
  const BigInt b = BigInt::from_hex("0123456789abcdef");
  const BigInt q = a / b;
  const BigInt r = a % b;
  EXPECT_LT(r, b);
  EXPECT_EQ(q * b + r, a);
  // python: divmod(0xdeadbeefcafebabe1234567890abcdef, 0x0123456789abcdef)
  EXPECT_EQ(q.to_hex(), "c3b6b4d0c169e2d94d");
  EXPECT_EQ(r.to_hex(), "404fb271460c");
}

TEST(BigIntTest, DivisionEdgeCases) {
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
  EXPECT_TRUE((BigInt(5) / BigInt(10)).is_zero());
  EXPECT_EQ((BigInt(5) % BigInt(10)).to_hex(), "05");
  EXPECT_EQ((BigInt(10) / BigInt(10)).to_hex(), "01");
  EXPECT_TRUE((BigInt(10) % BigInt(10)).is_zero());
  // Single-limb fast path.
  EXPECT_EQ((BigInt::from_hex("100000000") / BigInt(3)).to_hex(), "55555555");
}

TEST(BigIntTest, DivisionRandomizedInvariant) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::random_with_bits(rng, 256);
    const BigInt b = BigInt::random_with_bits(
        rng, static_cast<int>(rng.between(2, 200)));
    const BigInt q = a / b;
    const BigInt r = a % b;
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a) << "iteration " << i;
  }
}

TEST(BigIntTest, BitLengthAndBitAccess) {
  EXPECT_EQ(BigInt().bit_length(), 0);
  EXPECT_EQ(BigInt(1).bit_length(), 1);
  EXPECT_EQ(BigInt(0xff).bit_length(), 8);
  EXPECT_EQ(BigInt::from_hex("010000000000000000").bit_length(), 65);
  const BigInt v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigIntTest, ModPowKnownValues) {
  // python: pow(3, 200, 1000) == 1.
  EXPECT_EQ(BigInt::mod_pow(BigInt(3), BigInt(200), BigInt(1000)), BigInt(1));
  // python: pow(7, 123, 10**9+7) == 937329259.
  EXPECT_EQ(BigInt::mod_pow(BigInt(7), BigInt(123), BigInt(1000000007)),
            BigInt(937329259));
  // Fermat: a^(p-1) mod p == 1 for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt::mod_pow(BigInt(12345), p - BigInt(1), p), BigInt(1));
  EXPECT_EQ(BigInt::mod_pow(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
}

TEST(BigIntTest, GcdAndModInverse) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)).to_hex(), "06");
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(31)).to_hex(), "01");

  const BigInt m(3120);
  const BigInt inv = BigInt::mod_inverse(BigInt(17), m);
  EXPECT_EQ((inv * BigInt(17)) % m, BigInt(1));
  // Non-invertible: gcd(6, 9) = 3.
  EXPECT_TRUE(BigInt::mod_inverse(BigInt(6), BigInt(9)).is_zero());
}

TEST(BigIntTest, ModInverseRandomized) {
  Rng rng(77);
  const BigInt m = BigInt::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_with_bits(rng, 128);
    if (BigInt::gcd(a, m) != BigInt(1)) continue;
    const BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, RandomWithBitsHasExactWidth) {
  Rng rng(55);
  for (int bits : {2, 8, 31, 32, 33, 64, 127, 256}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_with_bits(rng, bits).bit_length(), bits);
    }
  }
}

// ---------------------------------------------------------------------------
// Primality / RSA
// ---------------------------------------------------------------------------

TEST(PrimalityTest, SmallKnownPrimesAndComposites) {
  Rng rng(2);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 101ull, 65537ull, 1000003ull}) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
  for (std::uint64_t c : {0ull, 1ull, 4ull, 100ull, 65541ull, 1000001ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, CarmichaelNumbersRejected) {
  Rng rng(2);
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  for (std::uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, LargeKnownPrime) {
  Rng rng(2);
  // 2^127 - 1 is a Mersenne prime.
  const BigInt m127 = (BigInt(1) << 127) - BigInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  EXPECT_FALSE(is_probable_prime(m127 + BigInt(2), rng));
}

TEST(PrimalityTest, GeneratedPrimesHaveRequestedWidth) {
  Rng rng(31);
  for (int bits : {64, 128, 256}) {
    const BigInt p = generate_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(RsaTest, SignVerifyRoundTrip) {
  Rng rng(101);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("the quick brown certificate");
  const Bytes signature = rsa_sign(pair.priv, message);
  EXPECT_EQ(signature.size(), pair.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(pair.pub, message, signature));
}

TEST(RsaTest, VerifyRejectsTampering) {
  Rng rng(102);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("authentic message");
  Bytes signature = rsa_sign(pair.priv, message);

  EXPECT_FALSE(rsa_verify(pair.pub, to_bytes("authentic messagF"), signature));

  Bytes flipped = signature;
  flipped[5] ^= 0x01;
  EXPECT_FALSE(rsa_verify(pair.pub, message, flipped));

  Bytes truncated(signature.begin(), signature.end() - 1);
  EXPECT_FALSE(rsa_verify(pair.pub, message, truncated));
}

TEST(RsaTest, VerifyRejectsWrongKey) {
  Rng rng(103);
  const RsaKeyPair a = generate_keypair(rng, 512);
  const RsaKeyPair b = generate_keypair(rng, 512);
  const Bytes message = to_bytes("cross-key check");
  EXPECT_FALSE(rsa_verify(b.pub, message, rsa_sign(a.priv, message)));
}

TEST(RsaTest, CrtSigningMatchesPlainExponentiation) {
  Rng rng(104);
  RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("crt equivalence");
  const Bytes crt_sig = rsa_sign(pair.priv, message);

  RsaPrivateKey plain = pair.priv;
  plain.p = BigInt{};
  plain.q = BigInt{};
  const Bytes plain_sig = rsa_sign(plain, message);
  EXPECT_TRUE(equal(crt_sig, plain_sig));
}

TEST(RsaTest, SignatureRejectsValueAboveModulus) {
  Rng rng(105);
  const RsaKeyPair pair = generate_keypair(rng, 512);
  const Bytes message = to_bytes("m");
  Bytes bogus = pair.pub.n.to_bytes_padded(pair.pub.modulus_bytes());
  EXPECT_FALSE(rsa_verify(pair.pub, message, bogus));
}

TEST(KeyPoolTest, NamedKeysAreStableAndDistinct) {
  KeyPool& pool = KeyPool::instance();
  const RsaKeyPair& a1 = pool.for_name("test-ca-alpha");
  const RsaKeyPair& a2 = pool.for_name("test-ca-alpha");
  const RsaKeyPair& b = pool.for_name("test-ca-beta");
  EXPECT_TRUE(a1.pub == a2.pub);
  EXPECT_FALSE(a1.pub == b.pub);
}

TEST(KeyPoolTest, LeafSlotsAreStable) {
  KeyPool& pool = KeyPool::instance();
  const RsaKeyPair& a1 = pool.leaf_slot("leafy.example.com");
  const RsaKeyPair& a2 = pool.leaf_slot("leafy.example.com");
  EXPECT_TRUE(a1.pub == a2.pub);
}

}  // namespace
}  // namespace chainchaos::crypto
