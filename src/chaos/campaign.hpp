// chaos::Campaign: the survival harness behind the crash-free contract.
//
// A campaign derives `count` adversarial inputs from the mutation engine
// (class round-robin, per-input seeds spaced by a golden-ratio stride
// from the campaign seed) and drives every one through the full
// pipeline: DER parse, certificate decode, chain:: compliance analysis,
// chainlint, and PathBuilder with AIA completion — either in-process or,
// in --through-daemon mode, POSTed to a live chaind over a real loopback
// socket. The contract it enforces (DESIGN.md §5.10):
//
//   * no crash     — no exception escapes, no worker dies (and under the
//                    ci.sh sanitizer stage: no ASan/UBSan finding),
//   * no hang      — every input classified within the per-input
//                    deadline,
//   * determinism  — the summary (per-class outcome histogram + SHA-256
//                    digest over every per-input verdict) is
//                    byte-identical across repeated runs and across
//                    thread counts.
//
// Determinism is engineered, not hoped for: per-input seeds derive
// arithmetically from the input index (never from shared Rng state),
// results land in an index-keyed vector merged in order, and the
// summary carries no wall-clock data.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/mutation.hpp"

namespace chainchaos::chaos {

struct CampaignOptions {
  std::uint64_t seed = 833;
  std::size_t count = 200;       ///< mutated inputs to derive and run
  std::vector<MutationClass> classes;  ///< empty = all 13 classes
  unsigned threads = 1;          ///< campaign workers; 0 = hardware
  std::uint64_t per_input_deadline_ms = 10000;  ///< hang threshold

  /// Base-corpus shape (kept small: the mutator only harvests a few
  /// dozen chains from it).
  std::size_t corpus_domains = 120;

  // --- AIA degradation ---------------------------------------------------
  /// Injected on every published URI before the run: first N attempts of
  /// each fetch fail transiently (exercises the retry path end to end).
  int aia_transient_failures = 0;
  /// Every AIA URI hard-down (fetches must degrade, never crash).
  bool aia_permanent_failures = false;
  /// Retry budget handed to PathBuilder / the daemon handler.
  int aia_max_retries = 2;

  // --- daemon mode --------------------------------------------------------
  /// Route every input through chaind's HTTP endpoints instead of
  /// calling the pipeline in-process.
  bool through_daemon = false;
  /// Target an already-running daemon; 0 starts an in-process Server on
  /// an ephemeral port for the duration of the run.
  std::uint16_t daemon_port = 0;

  // --- socket faults (daemon mode only) -----------------------------------
  /// After the mutation sweep, run the transport-level fault classes
  /// (socket_chaos.hpp) against the same daemon: slow-loris, mid-frame
  /// stalls, never-reading clients, connection storms. A campaign-owned
  /// server gets tightened read/write deadlines (800 ms) so evictions
  /// land well inside the fault budget.
  bool socket_faults = false;
  std::size_t socket_fault_clients = 8;  ///< hostile clients per class
  std::size_t socket_fault_storm = 128;  ///< F4 connection-storm cycles
};

struct CampaignSummary {
  std::size_t inputs = 0;
  std::size_t crashes = 0;             ///< exceptions that reached the harness
  std::size_t hangs = 0;               ///< per-input deadline overruns
  std::size_t transport_failures = 0;  ///< daemon mode: request never answered

  /// mutation id ("B1".."S7") → outcome string → count. Outcome strings
  /// are verdict-only (error codes, placements, build statuses) — no
  /// timing, no addresses — so histograms compare byte-for-byte.
  std::map<std::string, std::map<std::string, std::size_t>> outcomes;

  /// mutation id → "PD-xx reject=<comma-joined profiles>" → count, for
  /// the byte-level classes (B1–B6): each mutated input is additionally
  /// parsed under every parsdiff panel profile, and inputs where the
  /// panel splits record which profiles rejected and the discrepancy
  /// class. Purely additive — the outcome histogram, transcript and
  /// digest are computed exactly as before — and a pure function of the
  /// input bytes, so it shares the campaign's determinism contract.
  std::map<std::string, std::map<std::string, std::size_t>>
      profile_divergence;

  /// Socket-fault class → outcome string (run_socket_faults), present
  /// only when the campaign ran with socket_faults. Deterministic as
  /// long as the daemon's deadlines fit the eviction budget; kept out of
  /// the digest (which witnesses the mutation transcript alone).
  std::map<std::string, std::string> socket_faults;
  std::size_t socket_fault_failures = 0;

  /// SHA-256 (hex) over every per-input "index:class:outcome" line in
  /// index order: the strongest determinism witness the harness has.
  std::string digest;

  /// Wall-clock cost of one mutation class across the campaign. Kept
  /// strictly out of to_string() and the digest — timing varies run to
  /// run, the determinism witnesses must not.
  struct ClassTiming {
    std::size_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };

  /// mutation id → timing tally, populated from the same per-input
  /// clock the hang detector uses.
  std::map<std::string, ClassTiming> timings;

  bool contract_ok() const {
    return crashes == 0 && hangs == 0 && transport_failures == 0 &&
           socket_fault_failures == 0;
  }

  /// Deterministic multi-line rendering (what chaos_run prints and the
  /// smoke test diffs across runs).
  std::string to_string() const;

  /// Slowest-classes table (total time descending): class id, input
  /// count, total ms, mean µs, worst-input µs. What chaos_run --report
  /// prints; never part of to_string().
  std::string timing_report() const;
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions options);
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  /// Builds the corpus + mutator, applies the AIA fault schedule, runs
  /// every input, merges in index order. Never throws; contract
  /// violations are reported in the summary.
  CampaignSummary run();

  const CampaignOptions& options() const { return options_; }

 private:
  struct InputResult {
    std::string mutation_id;
    std::string outcome;
    std::string divergence;  ///< "" or "PD-xx reject=<profiles>"
    std::uint64_t elapsed_us = 0;
    bool crashed = false;
    bool hung = false;
    bool transport_failed = false;
  };

  /// One input through the in-process pipeline; returns the outcome
  /// string ("parse:<code>", "empty", or "ok:<placement>/<status>/...").
  std::string analyze_direct(const MutatedChain& input);

  CampaignOptions options_;
  struct State;  // corpus, mutator, optional in-process server
  std::unique_ptr<State> state_;
};

}  // namespace chainchaos::chaos
