#include "chain/topology.hpp"

#include <functional>

#include "chain/issuance.hpp"

namespace chainchaos::chain {

Topology Topology::build(const std::vector<x509::CertPtr>& list) {
  Topology topo;

  // Fold duplicates onto their first occurrence (paper: keep the
  // leftmost of bit-for-bit identical certificates).
  for (int pos = 0; pos < static_cast<int>(list.size()); ++pos) {
    const x509::CertPtr& cert = list[static_cast<std::size_t>(pos)];
    bool found = false;
    for (Node& node : topo.nodes_) {
      if (equal(node.cert->fingerprint, cert->fingerprint)) {
        node.occurrences.push_back(pos);
        found = true;
        break;
      }
    }
    if (!found) {
      Node node;
      node.cert = cert;
      node.first_position = pos;
      node.occurrences.push_back(pos);
      topo.nodes_.push_back(std::move(node));
    }
  }

  // Issuance edges between distinct nodes. Self-loops (self-signed
  // roots) are intentionally not edges: a root terminates a path.
  const int n = topo.size();
  for (int subject = 0; subject < n; ++subject) {
    for (int issuer = 0; issuer < n; ++issuer) {
      if (subject == issuer) continue;
      if (issued_by(*topo.nodes_[subject].cert, *topo.nodes_[issuer].cert)) {
        topo.nodes_[subject].issuers.push_back(issuer);
        topo.nodes_[issuer].issued.push_back(subject);
      }
    }
  }
  return topo;
}

std::vector<std::vector<int>> Topology::paths_from_leaf() const {
  std::vector<std::vector<int>> paths;
  if (empty()) return paths;

  std::vector<int> current;
  std::vector<bool> on_path(nodes_.size(), false);

  const std::function<void(int)> walk = [&](int node_id) {
    current.push_back(node_id);
    on_path[static_cast<std::size_t>(node_id)] = true;

    bool extended = false;
    for (int issuer : nodes_[static_cast<std::size_t>(node_id)].issuers) {
      if (on_path[static_cast<std::size_t>(issuer)]) continue;  // cycle guard
      extended = true;
      walk(issuer);
    }
    if (!extended) paths.push_back(current);

    on_path[static_cast<std::size_t>(node_id)] = false;
    current.pop_back();
  };

  walk(leaf_node());
  return paths;
}

std::vector<int> Topology::irrelevant_nodes() const {
  std::vector<int> out;
  if (empty()) return out;

  // Relevant = C0 plus everything reachable from it along subject->issuer
  // edges (its potential ancestors).
  std::vector<bool> relevant(nodes_.size(), false);
  std::vector<int> stack = {leaf_node()};
  relevant[0] = true;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    for (int issuer : nodes_[static_cast<std::size_t>(id)].issuers) {
      if (!relevant[static_cast<std::size_t>(issuer)]) {
        relevant[static_cast<std::size_t>(issuer)] = true;
        stack.push_back(issuer);
      }
    }
  }
  for (int id = 0; id < size(); ++id) {
    if (!relevant[static_cast<std::size_t>(id)]) out.push_back(id);
  }
  return out;
}

namespace {

bool path_has_reversed_edge(const std::vector<Topology::Node>& nodes,
                            const std::vector<int>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const int subject_pos =
        nodes[static_cast<std::size_t>(path[i])].first_position;
    const int issuer_pos =
        nodes[static_cast<std::size_t>(path[i + 1])].first_position;
    // Compliant order places the subject before its issuer; an issuer
    // sitting earlier in the list than its subject is a reversal.
    // The leaf (position 0) can never sit after its issuer, so this
    // compares the real list positions of both endpoints.
    if (issuer_pos < subject_pos) return true;
  }
  return false;
}

}  // namespace

bool Topology::any_path_reversed() const {
  for (const std::vector<int>& path : paths_from_leaf()) {
    if (path_has_reversed_edge(nodes_, path)) return true;
  }
  return false;
}

bool Topology::all_paths_reversed() const {
  const auto paths = paths_from_leaf();
  if (paths.empty()) return false;
  for (const std::vector<int>& path : paths) {
    if (!path_has_reversed_edge(nodes_, path)) return false;
  }
  return true;
}

std::string Topology::to_ascii() const {
  std::string out;
  for (const Node& node : nodes_) {
    std::string label = "C" + std::to_string(node.first_position);
    out += label;
    for (std::size_t i = 1; i < node.occurrences.size(); ++i) {
      out += " C" + std::to_string(node.first_position) + "[" +
             std::to_string(i) + "]@" + std::to_string(node.occurrences[i]);
    }
    out += ": " + node.cert->display_name();
    if (node.cert->is_self_signed()) out += " [root]";
    if (!node.issuers.empty()) {
      out += "  issuers={";
      for (std::size_t i = 0; i < node.issuers.size(); ++i) {
        if (i) out += ",";
        out += "C" + std::to_string(
                         nodes_[static_cast<std::size_t>(node.issuers[i])]
                             .first_position);
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

}  // namespace chainchaos::chain
