#!/usr/bin/env bash
# Header-hygiene checks for the chainchaos tree.
#
#   scripts/lint.sh
#
# Portable greps that always run:
#   - every header carries an include guard or #pragma once
#   - no `using namespace` at namespace scope in headers
#
# The clang-tidy pass that used to live here (advisory, skipped without
# clang-tidy) has been promoted to a gating CI stage of its own:
# scripts/tidy_gate.sh, which fails on findings and carries a portable
# fallback scanner for containers without clang-tidy.
#
# Exits non-zero on any finding.
set -u
cd "$(dirname "$0")/.."

STATUS=0

echo "== header hygiene =="

HEADERS=$(find src -name '*.hpp' | sort)

for h in $HEADERS; do
  if ! grep -q -e '#pragma once' -e '#ifndef' "$h"; then
    echo "$h: missing include guard / #pragma once" >&2
    STATUS=1
  fi
done

# `using namespace` leaking from a header pollutes every includer.
LEAKS=$(grep -n '^[[:space:]]*using namespace' $HEADERS /dev/null || true)
if [ -n "$LEAKS" ]; then
  echo "headers must not contain 'using namespace':" >&2
  echo "$LEAKS" >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "lint: clean"
else
  echo "lint: FAILED" >&2
fi
exit "$STATUS"
