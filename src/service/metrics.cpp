#include "service/metrics.hpp"

#include "report/json.hpp"

namespace chainchaos::service {

const char* to_string(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kAnalyze: return "analyze";
    case Endpoint::kLint: return "lint";
    case Endpoint::kStats: return "stats";
    case Endpoint::kHealth: return "health";
    case Endpoint::kOther: return "other";
  }
  return "other";
}

void Metrics::record_request(Endpoint endpoint) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  by_endpoint_[static_cast<std::size_t>(endpoint)].fetch_add(
      1, std::memory_order_relaxed);
}

void Metrics::record_response(int status, std::uint64_t micros) {
  if (status >= 500) {
    responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 400) {
    responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t bucket = kLatencyBucketUpperUs.size();
  for (std::size_t i = 0; i < kLatencyBucketUpperUs.size(); ++i) {
    if (micros <= kLatencyBucketUpperUs[i]) {
      bucket = i;
      break;
    }
  }
  latency_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_total_us_.fetch_add(micros, std::memory_order_relaxed);
}

void Metrics::record_rejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_client_disconnect() {
  client_disconnects_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_write_failure() {
  write_failures_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_worker_recovery() {
  worker_recoveries_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::note_queue_depth(std::size_t depth) {
  std::uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

std::string Metrics::to_json(const CacheStats& cache,
                             const net::FetchStats& aia) const {
  report::JsonWriter w;
  w.begin_object();

  w.key("requests").begin_object();
  w.key("total").value(requests_total());
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    w.key(to_string(static_cast<Endpoint>(i)))
        .value(by_endpoint_[i].load(std::memory_order_relaxed));
  }
  w.end_object();

  w.key("responses").begin_object();
  w.key("2xx").value(responses_2xx_.load(std::memory_order_relaxed));
  w.key("4xx").value(responses_4xx_.load(std::memory_order_relaxed));
  w.key("5xx").value(responses_5xx_.load(std::memory_order_relaxed));
  w.key("rejected_busy").value(rejected_.load(std::memory_order_relaxed));
  w.end_object();

  w.key("latency_us").begin_object();
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    w.begin_object();
    if (i < kLatencyBucketUpperUs.size()) {
      w.key("le").value(kLatencyBucketUpperUs[i]);
    } else {
      w.key("le").value("inf");
    }
    w.key("count").value(latency_[i].load(std::memory_order_relaxed));
    w.end_object();
  }
  w.end_array();
  w.key("total_us").value(latency_total_us_.load(std::memory_order_relaxed));
  w.end_object();

  w.key("queue").begin_object();
  w.key("high_water_mark").value(queue_high_water());
  w.end_object();

  w.key("connections").begin_object();
  w.key("disconnects_midrequest")
      .value(client_disconnects_.load(std::memory_order_relaxed));
  w.key("write_failures")
      .value(write_failures_.load(std::memory_order_relaxed));
  w.key("worker_recoveries")
      .value(worker_recoveries_.load(std::memory_order_relaxed));
  w.end_object();

  w.key("aia").begin_object();
  w.key("attempts").value(aia.attempts);
  w.key("hits").value(aia.hits);
  w.key("misses").value(aia.misses);
  w.key("unreachable").value(aia.unreachable);
  w.key("retries").value(aia.retries);
  w.key("transient_failures").value(aia.transient_failures);
  w.key("deadline_exceeded").value(aia.deadline_exceeded);
  w.key("corrupt_responses").value(aia.corrupt_responses);
  w.key("bytes_served").value(aia.bytes_served);
  w.key("simulated_latency_ms").value(aia.simulated_latency_ms);
  w.end_object();

  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("evictions").value(cache.evictions);
  w.key("insertions").value(cache.insertions);
  w.key("entries").value(cache.entries);
  w.key("hit_ratio").value(cache.hit_ratio());
  w.end_object();

  w.end_object();
  return w.take();
}

}  // namespace chainchaos::service
