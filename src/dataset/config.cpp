#include "dataset/config.hpp"

namespace chainchaos::dataset {

namespace {

/// Builds a CaCalibration from the raw Table 11 counts.
CaCalibration from_counts(std::string name, double total_domains,
                          double population, double dup, double irrel,
                          double multi, double rev, double incomp) {
  CaCalibration c;
  c.name = std::move(name);
  c.share = total_domains / population;
  c.duplicate_rate = dup / total_domains;
  c.irrelevant_rate = irrel / total_domains;
  c.multiple_paths_rate = multi / total_domains;
  c.reversed_rate = rev / total_domains;
  c.incomplete_rate = incomp / total_domains;
  return c;
}

}  // namespace

std::vector<CaCalibration> CorpusConfig::default_ca_calibration() {
  // Raw counts from Table 11; population is the paper's corpus size.
  constexpr double kPopulation = 906336.0;
  std::vector<CaCalibration> cas;
  cas.push_back(from_counts("Let's Encrypt", 400737, kPopulation, 3259, 400,
                            51, 81, 1155));
  cas.push_back(from_counts("Digicert", 60894, kPopulation, 771, 726, 6, 1736,
                            2245));
  cas.push_back(from_counts("Sectigo Limited", 48042, kPopulation, 639, 496,
                            134, 2537, 1998));
  cas.push_back(from_counts("ZeroSSL", 8219, kPopulation, 86, 35, 0, 2, 120));
  cas.push_back(from_counts("GoGetSSL", 1617, kPopulation, 41, 34, 7, 125,
                            112));
  cas.push_back(from_counts("TAIWAN-CA", 492, kPopulation, 7, 8, 0, 47, 206));
  cas.push_back(from_counts("cyber_Folks S.A.", 142, kPopulation, 3, 8, 0, 86,
                            8));
  cas.push_back(from_counts("Trustico", 108, kPopulation, 1, 1, 0, 67, 4));
  // Remainder bucket: everything not attributed to the 8 named issuers,
  // sized so the overall Table 5/7 marginals land on the paper's totals.
  const double named_population = 400737 + 60894 + 48042 + 8219 + 1617 + 492 +
                                  142 + 108;
  const double other_population = kPopulation - named_population;
  cas.push_back(from_counts("Other CAs", other_population, kPopulation,
                            5974 - 4807, 3032 - 1708, 246 - 198, 8566 - 4681,
                            12087 - 5848));
  return cas;
}

namespace {

ServerMix normalized(ServerMix mix) {
  double total = 0;
  for (double w : mix) total += w;
  for (double& w : mix) w /= total;
  return mix;
}

}  // namespace

// Columns: Apache, Nginx, Azure, Cloudflare, IIS, AWS ELB, Other.
ServerMix CorpusConfig::server_mix_compliant() {
  // Not reported by the paper (it only tabulates non-compliant chains);
  // approximates the web's overall server shares.
  return normalized({25, 31, 2, 22, 3, 3, 14});
}
ServerMix CorpusConfig::server_mix_duplicates() {
  return normalized({56.1, 22.6, 0.2, 3.4, 1.9, 5.6, 10.2});
}
ServerMix CorpusConfig::server_mix_irrelevant() {
  return normalized({53.0, 32.8, 0.9, 3.4, 1.5, 1.4, 7.0});
}
ServerMix CorpusConfig::server_mix_multiple_paths() {
  return normalized({32.5, 50.4, 0.0, 2.6, 2.6, 0.9, 11.1});
}
ServerMix CorpusConfig::server_mix_reversed() {
  return normalized({23.1, 38.2, 14.2, 3.2, 4.0, 2.6, 14.5});
}
ServerMix CorpusConfig::server_mix_incomplete() {
  return normalized({39.6, 40.4, 2.2, 3.0, 3.0, 1.8, 10.1});
}

const std::vector<std::string>& CorpusConfig::server_names() {
  static const std::vector<std::string> names = {
      "Apache", "Nginx", "Azure", "cloudflare", "IIS", "AWS ELB", "Other"};
  return names;
}

}  // namespace chainchaos::dataset
