#include "corpusio/source.hpp"

namespace chainchaos::corpusio {

void PackedRecordSource::visit(
    std::size_t first, std::size_t last,
    const std::function<void(const dataset::DomainRecord&, std::size_t)>& fn)
    const {
  if (first >= last) return;
  for (std::size_t i = first; i < last; ++i) {
    auto record = reader_->decode_record(i);
    if (!record.ok()) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    fn(record.value(), i);
  }
  bytes_visited_.fetch_add(reader_->record_bytes(first, last),
                           std::memory_order_relaxed);
  if (release_pages_) reader_->release_records(first, last);
}

}  // namespace chainchaos::corpusio
