// trace_overhead: proves the §5.11 overhead budget — tracing must cost
// the sweep under 3% when on and nothing measurable when off.
//
// Two measurements:
//
//   1. Macro: the full per-record pipeline (parse → analyze → lint →
//      pathbuild, exactly what chainprof profiles) over a synthetic
//      corpus, measured in **process CPU time** (overhead is a CPU-cost
//      claim, and CPU time is less exposed to the other-process
//      interference that makes wall time swing ±20% on a shared 1-CPU
//      box), in off/on pairs whose order alternates between pairs
//      (cancels drift), gated on the median pairwise overhead
//      (on - off) / off < 3%. Host-level noise is strictly inflationary
//      for the median, so the gate takes the best median of up to three
//      attempts — a genuine regression fails all three.
//
//   2. Micro: ns per span site for the three states a CHAINCHAOS_SPAN
//      can be in — runtime-enabled (two clock reads + buffer stores),
//      runtime-disabled (one relaxed load), and NoopSpan, which is
//      byte-for-byte what the macro compiles to under
//      -DCHAINCHAOS_OBS=OFF. Runtime-disabled ≈ NoopSpan is the
//      "compiled out in spirit" claim; true compile-out needs the CMake
//      option, which can't coexist with the enabled path in one binary.
//
// Exit status: 0 iff the macro overhead stays under the documented 3%.
#include <ctime>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "chain/analyzer.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "pathbuild/path_builder.hpp"
#include "x509/certificate.hpp"

using namespace chainchaos;

namespace {

// Many short pairs beat few long ones twice over: the off/on halves of
// a ~0.1s pair run under near-identical machine conditions (so the
// ratio is clean even while a host-level burst is in progress), and the
// median over 31 ratios shrugs off the pairs a burst boundary lands on.
constexpr int kPairs = 31;
constexpr double kBudgetPercent = 3.0;

double cpu_seconds_now() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

double sweep_seconds(dataset::Corpus& corpus,
                     const chain::ComplianceAnalyzer& analyzer,
                     const lint::Linter& linter, bool event_site = false) {
  engine::AnalysisRequest request;
  request.records = &corpus.records();
  request.shards.threads = 1;  // single-threaded: process CPU == sweep CPU
  request.per_record = [&](const dataset::DomainRecord& record, std::size_t,
                           const chain::ComplianceReport*,
                           engine::ShardTally&) {
    CHAINCHAOS_SPAN(obs::Stage::kPipelineRecord);
    // The events arm mirrors production emit sites: one relaxed enabled
    // check per record, and a ring write when the log is on.
    if (event_site && obs::EventLog::instance().enabled()) {
      obs::EventLog::instance().emit(obs::EventLevel::kDebug, "bench.record",
                                     {});
    }
    std::vector<x509::CertPtr> chain;
    chain.reserve(record.observation.certificates.size());
    for (const x509::CertPtr& cert : record.observation.certificates) {
      auto parsed = x509::parse_certificate(cert->der);
      if (!parsed.ok()) return;
      chain.push_back(std::move(parsed).value());
    }
    chain::ChainObservation observation;
    observation.domain = record.observation.domain;
    observation.certificates = std::move(chain);

    const chain::ComplianceReport report = analyzer.analyze(observation);
    linter.lint(observation, report);

    pathbuild::BuildPolicy policy;
    policy.aia_completion = true;
    pathbuild::PathBuilder builder(policy, &corpus.stores().union_store,
                                   &corpus.aia());
    builder.set_cache_learning(false);
    builder.build(observation.certificates, observation.domain);
  };
  const double start = cpu_seconds_now();
  engine::run(request);
  return cpu_seconds_now() - start;
}

/// ns/iteration of `fn` over `iters` calls (one timed block, no warmup
/// subtlety — the caller interleaves reps).
template <typename Fn>
double nanos_per_call(std::size_t iters, Fn&& fn) {
  const std::uint64_t start = obs::Tracer::now_ns();
  for (std::size_t i = 0; i < iters; ++i) fn();
  return static_cast<double>(obs::Tracer::now_ns() - start) /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  // A small corpus keeps each sweep ~0.1s so pairs are tight (see
  // kPairs); CHAINCHAOS_DOMAINS still overrides for a full-size run.
  dataset::CorpusConfig config = bench::config_from_env();
  if (std::getenv("CHAINCHAOS_DOMAINS") == nullptr) {
    config.domain_count = 2000;
  }
  std::printf("[corpus] %zu synthetic domains, seed %llu\n",
              config.domain_count,
              static_cast<unsigned long long>(config.seed));
  auto corpus = std::make_unique<dataset::Corpus>(std::move(config));

  chain::CompletenessOptions completeness;
  completeness.store = &corpus->stores().union_store;
  completeness.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(completeness);
  const lint::Linter linter{lint::LintOptions{}};

  obs::Tracer& tracer = obs::Tracer::instance();

  // --- macro: full sweep, tracing off vs on, in paired reps --------------
  const auto sweep_off = [&] {
    tracer.set_enabled(false);
    return sweep_seconds(*corpus, analyzer, linter);
  };
  const auto sweep_on = [&] {
    tracer.set_enabled(true);
    tracer.reset();  // quiescent here; keeps buffers from filling up
    return sweep_seconds(*corpus, analyzer, linter);
  };

  sweep_off();  // warm-up: key pool, caches, page faults

  const auto measure_median = [&](const char* label, const auto& off_fn,
                                  const auto& on_fn) {
    std::vector<double> overheads;
    for (int pair = 0; pair < kPairs; ++pair) {
      double off, on;
      if (pair % 2 == 0) {
        off = off_fn();
        on = on_fn();
      } else {
        on = on_fn();
        off = off_fn();
      }
      overheads.push_back(100.0 * (on - off) / off);
    }
    tracer.set_enabled(false);
    obs::EventLog::instance().set_enabled(false);
    std::sort(overheads.begin(), overheads.end());
    const double median = overheads[overheads.size() / 2];
    std::printf("%s off/on pairs (%d): overhead median %.2f%% "
                "[min %.2f%%, max %.2f%%] (budget %.1f%%)\n",
                label, kPairs, median, overheads.front(), overheads.back(),
                kBudgetPercent);
    return median;
  };

  constexpr int kAttempts = 3;
  double overhead_pct = 1e18;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    overhead_pct =
        std::min(overhead_pct, measure_median("sweep", sweep_off, sweep_on));
    if (overhead_pct < kBudgetPercent) break;  // pass; don't keep burning CPU
  }

  // --- macro: same pipeline, event log off vs on (tracing stays off) ----
  // One emit per record — a heavier event rate than the daemon's
  // per-connection sites — must fit the same budget.
  const auto events_off = [&] {
    tracer.set_enabled(false);
    obs::EventLog::instance().set_enabled(false);
    return sweep_seconds(*corpus, analyzer, linter, /*event_site=*/true);
  };
  const auto events_on = [&] {
    tracer.set_enabled(false);
    obs::EventLog::instance().set_enabled(true);
    return sweep_seconds(*corpus, analyzer, linter, /*event_site=*/true);
  };
  double events_pct = 1e18;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    events_pct =
        std::min(events_pct, measure_median("events", events_off, events_on));
    if (events_pct < kBudgetPercent) break;
  }

  // --- micro: cost of one span site --------------------------------------
  // Fits the default per-thread buffer (1<<18 slots) so every iteration
  // takes the full record path, not the cheaper buffer-full drop path.
  constexpr std::size_t kIters = 200'000;
  tracer.set_enabled(true);
  tracer.reset();
  const double enabled_ns = nanos_per_call(kIters, [] {
    CHAINCHAOS_SPAN(obs::Stage::kEngineSteal);
  });
  tracer.set_enabled(false);
  tracer.reset();
  const double disabled_ns = nanos_per_call(kIters, [] {
    CHAINCHAOS_SPAN(obs::Stage::kEngineSteal);
  });
  const double noop_ns = nanos_per_call(kIters, [] {
    obs::NoopSpan span(obs::Stage::kEngineSteal);
    (void)span;
  });
  std::printf("span site: enabled %.1f ns, runtime-off %.2f ns, "
              "compiled-out (NoopSpan) %.2f ns\n",
              enabled_ns, disabled_ns, noop_ns);

  const bool ok =
      overhead_pct < kBudgetPercent && events_pct < kBudgetPercent;
  std::printf("trace overhead %s, event overhead %s\n",
              overhead_pct < kBudgetPercent ? "within budget" : "OVER BUDGET",
              events_pct < kBudgetPercent ? "within budget" : "OVER BUDGET");
  return ok ? 0 : 1;
}
