#include "lint/lint.hpp"

#include "obs/trace.hpp"

namespace chainchaos::lint {

std::vector<Finding> Linter::lint_certificate(
    const x509::Certificate& cert) const {
  std::vector<Finding> findings;
  const CertContext ctx{cert, 0, 1, options_};
  for (const CertRule& r : cert_rules()) {
    Emitter out(r.rule, 0, findings);
    r.check(ctx, out);
  }
  return findings;
}

LintReport Linter::lint(const chain::ChainObservation& observation,
                        const chain::ComplianceReport& report) const {
  LintReport out;
  out.domain = observation.domain;
  out.certificates = observation.certificates.size();

  {
    CHAINCHAOS_SPAN(obs::Stage::kLintChainRules);
    const ChainContext chain_ctx{observation, report, options_};
    for (const ChainRule& r : chain_rules()) {
      Emitter emitter(r.rule, -1, out.findings);
      r.check(chain_ctx, emitter);
    }
  }

  CHAINCHAOS_SPAN(obs::Stage::kLintCertRules);
  for (std::size_t i = 0; i < observation.certificates.size(); ++i) {
    const CertContext cert_ctx{*observation.certificates[i], i,
                               observation.certificates.size(), options_};
    for (const CertRule& r : cert_rules()) {
      Emitter emitter(r.rule, static_cast<int>(i), out.findings);
      r.check(cert_ctx, emitter);
    }
  }
  return out;
}

}  // namespace chainchaos::lint
