#include "service/cache.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace chainchaos::service {

ResultCache::ResultCache(std::size_t capacity, std::size_t shard_count)
    : capacity_(capacity) {
  if (capacity_ == 0) return;
  shard_count = std::clamp<std::size_t>(shard_count, 1, capacity_);
  // Split capacity evenly; the remainder is dropped rather than making
  // shard capacities uneven (keeps eviction behaviour uniform).
  per_shard_capacity_ = std::max<std::size_t>(1, capacity_ / shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_for(const Bytes& key) {
  // The key is a cryptographic digest: any 8 bytes are uniform. Fold the
  // first 8 into the shard selector.
  std::uint64_t selector = 0;
  for (std::size_t i = 0; i < 8 && i < key.size(); ++i) {
    selector = (selector << 8) | key[i];
  }
  return *shards_[selector % shards_.size()];
}

std::optional<std::string> ResultCache::get(const Bytes& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = shard_for(key);
  const std::string k(key.begin(), key.end());
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(k);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::put(const Bytes& key, std::string value) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  const std::string k(key.begin(), key.end());
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(k);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.emplace_front(k, std::move(value));
  shard.index[k] = shard.lru.begin();
  ++shard.insertions;
}

CacheStats ResultCache::stats() const {
  CacheStats merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    merged.hits += shard->hits;
    merged.misses += shard->misses;
    merged.evictions += shard->evictions;
    merged.insertions += shard->insertions;
    merged.entries += shard->lru.size();
  }
  return merged;
}

Bytes result_cache_key(std::string_view endpoint, std::string_view domain,
                       const std::vector<Bytes>& chain_der) {
  crypto::Sha256 hasher;
  const auto absorb_length = [&hasher](std::size_t n) {
    std::uint8_t prefix[8];
    for (int i = 7; i >= 0; --i) {
      prefix[i] = static_cast<std::uint8_t>(n & 0xff);
      n >>= 8;
    }
    hasher.update(BytesView(prefix, 8));
  };
  absorb_length(endpoint.size());
  hasher.update(to_bytes(endpoint));
  absorb_length(domain.size());
  hasher.update(to_bytes(domain));
  for (const Bytes& der : chain_der) {
    absorb_length(der.size());
    hasher.update(der);
  }
  const auto digest = hasher.finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace chainchaos::service
