#include "service/event_loop.hpp"

#include <cerrno>

#ifdef __linux__
#include <sys/epoll.h>
#endif
#include <unistd.h>

namespace chainchaos::service {

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

Poller::Poller(bool force_poll) {
#ifdef __linux__
  if (!force_poll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    // On failure fall through to the poll backend — epoll is an
    // optimisation, not a requirement.
  }
#else
  (void)force_poll;
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

#ifdef __linux__
namespace {
std::uint32_t epoll_mask(bool read, bool write) {
  std::uint32_t events = 0;
  if (read) events |= EPOLLIN;
  if (write) events |= EPOLLOUT;
  return events;
}
}  // namespace
#endif

void Poller::add(int fd, std::uint64_t tag, bool want_read, bool want_write) {
  interests_[fd] = Interest{tag, want_read, want_write};
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = tag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
#endif
}

void Poller::set(int fd, bool want_read, bool want_write) {
  const auto it = interests_.find(fd);
  if (it == interests_.end()) return;
  it->second.read = want_read;
  it->second.write = want_write;
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = it->second.tag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
#endif
}

void Poller::remove(int fd) {
  interests_.erase(fd);
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

int Poller::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ready[256];
    const int n = ::epoll_wait(epoll_fd_, ready, 256, timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.tag = ready[i].data.u64;
      ev.readable = (ready[i].events & EPOLLIN) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return n;
  }
#endif
  // poll(2) backend: rebuild the fd set each call. O(watched) per wait
  // rather than O(ready) — acceptable for the portability fallback.
  scratch_.clear();
  scratch_.reserve(interests_.size());
  for (const auto& [fd, interest] : interests_) {
    pollfd pfd{};
    pfd.fd = fd;
    if (interest.read) pfd.events |= POLLIN;
    if (interest.write) pfd.events |= POLLOUT;
    scratch_.push_back(pfd);
  }
  const int n = ::poll(scratch_.data(),
                       static_cast<nfds_t>(scratch_.size()), timeout_ms);
  if (n <= 0) return 0;
  for (const pollfd& pfd : scratch_) {
    if (pfd.revents == 0) continue;
    const auto it = interests_.find(pfd.fd);
    if (it == interests_.end()) continue;
    Event ev;
    ev.tag = it->second.tag;
    ev.readable = (pfd.revents & POLLIN) != 0;
    ev.writable = (pfd.revents & POLLOUT) != 0;
    ev.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return static_cast<int>(out.size());
}

// ---------------------------------------------------------------------------
// TimeoutWheel
// ---------------------------------------------------------------------------

TimeoutWheel::TimeoutWheel(std::size_t slot_count, int tick_ms,
                           Clock::time_point origin)
    : slots_(slot_count == 0 ? 1 : slot_count),
      origin_(origin),
      tick_ms_(tick_ms <= 0 ? 1 : tick_ms) {}

std::uint64_t TimeoutWheel::tick_index(Clock::time_point t) const {
  if (t <= origin_) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      t - origin_)
                      .count();
  return static_cast<std::uint64_t>(ms) /
         static_cast<std::uint64_t>(tick_ms_);
}

void TimeoutWheel::insert(std::uint64_t id, Clock::time_point deadline) {
  // A deadline inside the current tick would land in a slot the cursor
  // already passed and sit there a full revolution; clamp forward one
  // tick so it fires on the next sweep instead.
  std::uint64_t tick = tick_index(deadline);
  if (tick <= cursor_) tick = cursor_ + 1;
  slots_[tick % slots_.size()].push_back(id);
}

void TimeoutWheel::schedule(std::uint64_t id, Clock::time_point deadline) {
  const auto it = deadlines_.find(id);
  if (it != deadlines_.end()) {
    if (it->second == deadline) return;  // unchanged: keep the slot entry
    it->second = deadline;
    // The stale slot entry is abandoned; collect_due drops it when its
    // slot comes around (the map no longer points there).
  } else {
    deadlines_.emplace(id, deadline);
  }
  insert(id, deadline);
}

void TimeoutWheel::cancel(std::uint64_t id) { deadlines_.erase(id); }

void TimeoutWheel::collect_due(Clock::time_point now,
                               std::vector<std::uint64_t>& due) {
  const std::uint64_t target = tick_index(now);
  if (target <= cursor_) return;
  // Never sweep more than one full revolution: every slot would be
  // visited twice for nothing if the loop stalled that long.
  const std::uint64_t first = target - cursor_ > slots_.size()
                                  ? target - slots_.size() + 1
                                  : cursor_ + 1;
  std::vector<std::uint64_t> survivors;
  for (std::uint64_t tick = first; tick <= target; ++tick) {
    std::vector<std::uint64_t>& slot = slots_[tick % slots_.size()];
    if (slot.empty()) continue;
    for (const std::uint64_t id : slot) {
      const auto it = deadlines_.find(id);
      if (it == deadlines_.end()) continue;  // cancelled or moved away
      if (it->second <= now) {
        due.push_back(id);
        deadlines_.erase(it);
      } else {
        // Rescheduled later, or a wrap-around from a future revolution:
        // carry it forward. A re-insert may duplicate an entry the move
        // left in another slot — harmless, the map gates every visit.
        survivors.push_back(id);
      }
    }
    slot.clear();
  }
  cursor_ = target;
  for (const std::uint64_t id : survivors) {
    const auto it = deadlines_.find(id);
    if (it != deadlines_.end()) insert(id, it->second);
  }
}

}  // namespace chainchaos::service
