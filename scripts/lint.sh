#!/usr/bin/env bash
# Static-analysis gate for the chainchaos tree.
#
#   scripts/lint.sh [build-dir]
#
# Two layers:
#   1. clang-tidy over every .cpp in src/ using .clang-tidy — runs only
#      when clang-tidy AND a compile_commands.json are available (the CI
#      container ships g++ only; the step is skipped, not failed, there).
#   2. Portable header-hygiene greps that always run:
#        - every header carries an include guard or #pragma once
#        - no `using namespace` at namespace scope in headers
#
# Exits non-zero on any finding.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
STATUS=0

# ---------------------------------------------------------------------------
# 1. clang-tidy (optional)
# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "== clang-tidy (profile: .clang-tidy) =="
    TIDY_FAILED=0
    for f in $(find src -name '*.cpp' | sort); do
      if ! clang-tidy --quiet -p "$BUILD_DIR" "$f"; then
        TIDY_FAILED=1
      fi
    done
    if [ "$TIDY_FAILED" -ne 0 ]; then
      echo "clang-tidy: findings above" >&2
      STATUS=1
    fi
  else
    echo "clang-tidy found but $BUILD_DIR/compile_commands.json is missing;"
    echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON to enable. Skipping."
  fi
else
  echo "clang-tidy not installed; skipping (header-hygiene checks still run)"
fi

# ---------------------------------------------------------------------------
# 2. Header hygiene (always)
# ---------------------------------------------------------------------------
echo "== header hygiene =="

HEADERS=$(find src -name '*.hpp' | sort)

for h in $HEADERS; do
  if ! grep -q -e '#pragma once' -e '#ifndef' "$h"; then
    echo "$h: missing include guard / #pragma once" >&2
    STATUS=1
  fi
done

# `using namespace` leaking from a header pollutes every includer.
LEAKS=$(grep -n '^[[:space:]]*using namespace' $HEADERS /dev/null || true)
if [ -n "$LEAKS" ]; then
  echo "headers must not contain 'using namespace':" >&2
  echo "$LEAKS" >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "lint: clean"
else
  echo "lint: FAILED" >&2
fi
exit "$STATUS"
