// Engineering microbenchmarks (google-benchmark): the costs behind the
// measurement pipeline — signing/verification, DER parsing, topology
// construction, issuance-cache effectiveness, path building as a
// function of chain length and candidate fan-out, and the sharded
// engine's corpus sweep at increasing thread counts.
#include <benchmark/benchmark.h>

#include "chain/issuance.hpp"
#include "chain/topology.hpp"
#include "clients/profiles.hpp"
#include "crypto/rsa.hpp"
#include "dataset/corpus.hpp"
#include "engine/engine.hpp"
#include "lint/sweep.hpp"
#include "pathbuild/path_builder.hpp"
#include "x509/builder.hpp"

namespace {

using namespace chainchaos;
using x509::CertificateBuilder;
using x509::CertPtr;

// Shared fixture material, built once.
struct Fixture {
  x509::SigningIdentity root_id =
      x509::make_identity(asn1::Name::make("Perf Root"));
  CertPtr root;
  std::vector<x509::SigningIdentity> tower_ids;
  std::vector<CertPtr> tower;  // tower[0] under root, deeper after
  truststore::RootStore store{"perf"};

  Fixture() {
    CertificateBuilder rb;
    rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
    root = rb.self_sign(root_id.keys);
    store.add(root);
    extend_to(32);
  }

  void extend_to(int levels) {
    while (static_cast<int>(tower.size()) < levels) {
      const int level = static_cast<int>(tower.size()) + 1;
      x509::SigningIdentity id = x509::make_identity(
          asn1::Name::make("Perf Tower " + std::to_string(level)));
      const x509::SigningIdentity& parent =
          level == 1 ? root_id : tower_ids.back();
      CertificateBuilder builder;
      builder.subject(id.name).as_ca().public_key(id.keys.pub);
      tower.push_back(builder.sign(parent));
      tower_ids.push_back(std::move(id));
    }
  }

  /// Compliant list with n intermediates: [leaf, T_n..T_1].
  std::vector<CertPtr> chain_of(int n) {
    extend_to(n);
    CertificateBuilder lb;
    lb.as_leaf("perf.example.com");
    std::vector<CertPtr> list;
    list.push_back(lb.sign(tower_ids[static_cast<std::size_t>(n - 1)]));
    for (int level = n; level >= 1; --level) {
      list.push_back(tower[static_cast<std::size_t>(level - 1)]);
    }
    return list;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_RsaSign(benchmark::State& state) {
  const auto& keys = crypto::KeyPool::instance().for_name("perf-sign");
  const Bytes message = to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(keys.priv, message));
  }
}
BENCHMARK(BM_RsaSign);

void BM_RsaVerify(benchmark::State& state) {
  const auto& keys = crypto::KeyPool::instance().for_name("perf-sign");
  const Bytes message = to_bytes("benchmark message");
  const Bytes signature = crypto::rsa_sign(keys.priv, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(keys.pub, message, signature));
  }
}
BENCHMARK(BM_RsaVerify);

void BM_CertificateIssue(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    CertificateBuilder builder;
    builder.as_leaf("issue.example.com");
    benchmark::DoNotOptimize(builder.sign(f.root_id));
  }
}
BENCHMARK(BM_CertificateIssue);

void BM_CertificateParse(benchmark::State& state) {
  Fixture& f = fixture();
  CertificateBuilder builder;
  builder.as_leaf("parse.example.com");
  const CertPtr cert = builder.sign(f.root_id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x509::parse_certificate(cert->der));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cert->der.size()));
}
BENCHMARK(BM_CertificateParse);

void BM_TopologyBuild(benchmark::State& state) {
  Fixture& f = fixture();
  const auto list = f.chain_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    chain::reset_issuance_cache();
    benchmark::DoNotOptimize(chain::Topology::build(list));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TopologyBuild)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_TopologyBuildCached(benchmark::State& state) {
  Fixture& f = fixture();
  const auto list = f.chain_of(static_cast<int>(state.range(0)));
  chain::Topology::build(list);  // warm the issuance cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::Topology::build(list));
  }
}
BENCHMARK(BM_TopologyBuildCached)->Arg(8)->Arg(32);

void BM_PathBuildDepth(benchmark::State& state) {
  Fixture& f = fixture();
  const auto list = f.chain_of(static_cast<int>(state.range(0)));
  pathbuild::PathBuilder builder(pathbuild::BuildPolicy{}, &f.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(list, "perf.example.com"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathBuildDepth)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_PathBuildReversed(benchmark::State& state) {
  Fixture& f = fixture();
  auto list = f.chain_of(static_cast<int>(state.range(0)));
  std::reverse(list.begin() + 1, list.end());
  pathbuild::PathBuilder builder(pathbuild::BuildPolicy{}, &f.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(list, "perf.example.com"));
  }
}
BENCHMARK(BM_PathBuildReversed)->Arg(8)->Arg(16);

void BM_PathBuildPerClient(benchmark::State& state) {
  Fixture& f = fixture();
  const auto profiles = clients::all_profiles();
  const auto& profile = profiles[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(profile.name);
  const auto list = f.chain_of(4);
  pathbuild::PathBuilder builder(profile.policy, &f.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(list, "perf.example.com"));
  }
}
BENCHMARK(BM_PathBuildPerClient)->DenseRange(0, 7);

// --- Corpus sweeps on the sharded engine ----------------------------------

dataset::Corpus& sweep_corpus() {
  static dataset::Corpus* corpus = [] {
    dataset::CorpusConfig config;
    config.domain_count = 2000;
    return new dataset::Corpus(std::move(config));
  }();
  return *corpus;
}

/// The full §4 compliance sweep through engine::run at state.range(0)
/// worker threads. The issuance memo is reset each iteration so the
/// measured work is the real signature-check load, not cache replay.
void BM_EngineComplianceSweep(benchmark::State& state) {
  dataset::Corpus& corpus = sweep_corpus();
  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  for (auto _ : state) {
    chain::reset_issuance_cache();
    engine::AnalysisRequest request;
    request.records = &corpus.records();
    request.shards.threads = static_cast<unsigned>(state.range(0));
    request.analyzer = &analyzer;
    benchmark::DoNotOptimize(engine::run(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_EngineComplianceSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Same sweep with a warm issuance memo: what a re-analysis pass costs.
void BM_EngineComplianceSweepCached(benchmark::State& state) {
  dataset::Corpus& corpus = sweep_corpus();
  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus.records();
  request.shards.threads = static_cast<unsigned>(state.range(0));
  request.analyzer = &analyzer;
  engine::run(request);  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::run(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_EngineComplianceSweepCached)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- chainlint ------------------------------------------------------------

/// The certificate-level rule pass on one leaf: raw-TBS re-scan, DER
/// length walk, and every cert.* check.
void BM_LintCertificate(benchmark::State& state) {
  Fixture& f = fixture();
  CertificateBuilder lb;
  lb.as_leaf("lint-bench.example.com");
  const CertPtr leaf = lb.sign(f.tower_ids.front());
  const lint::Linter linter(lint::LintOptions{1800000000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(linter.lint_certificate(*leaf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LintCertificate);

/// Corpus-wide chainlint sweep (every rule over every chain) through the
/// engine at state.range(0) threads; warm issuance memo, so this prices
/// the lint pass itself plus the taxonomy analyses.
void BM_LintCorpusSweep(benchmark::State& state) {
  dataset::Corpus& corpus = sweep_corpus();
  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);

  lint::CorpusLintRequest request;
  request.records = &corpus.records();
  request.shards.threads = static_cast<unsigned>(state.range(0));
  request.analyzer = &analyzer;
  request.options.now = 1800000000;
  lint::lint_corpus(request);  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::lint_corpus(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_LintCorpusSweep)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
