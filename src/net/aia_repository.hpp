// AiaRepository: the simulated HTTP side of Authority Information Access.
//
// Real clients resolve a missing issuer by fetching the URI in the
// certificate's AIA caIssuers field over plain HTTP. The repository
// stands in for that web: CA pipelines publish issuer certificates under
// their URIs, and clients/analyzers fetch from it. Failure modes observed
// by the paper are injectable per-URI:
//   * URI unreachable (88 chains in the paper's corpus),
//   * URI serving the wrong certificate — e.g. CAcert Class 3 serving
//     itself instead of its issuer (1 chain),
// and "no AIA extension at all" is simply a certificate without the
// field (579 chains).
//
// Fetches are counted and charged a simulated latency so benches can
// report the construction-time cost of AIA completion.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/result.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::net {

/// Statistics accumulated across all fetches on a repository.
struct FetchStats {
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< URI unknown to the repository
  std::uint64_t unreachable = 0;   ///< URI marked as failing
  std::uint64_t bytes_served = 0;
  std::uint64_t simulated_latency_ms = 0;

  void reset() { *this = FetchStats{}; }
};

class AiaRepository {
 public:
  /// Per-fetch simulated round-trip cost (a plain-HTTP fetch of a small
  /// object; the default mirrors a typical cross-continent RTT).
  explicit AiaRepository(std::uint64_t latency_ms_per_fetch = 120)
      : latency_ms_(latency_ms_per_fetch) {}

  /// Serves `cert` at `uri` (later publishes overwrite earlier ones).
  void publish(const std::string& uri, x509::CertPtr cert);

  /// Makes `uri` fail every fetch (connection refused / timeout).
  void mark_unreachable(const std::string& uri);

  /// Fetches the certificate at `uri`, updating statistics. Safe to call
  /// concurrently from any number of analysis threads (the repository is
  /// internally synchronized; the parallel engine shares one repository
  /// across its whole worker pool).
  Result<x509::CertPtr> fetch(const std::string& uri);

  /// True if the URI has a live (reachable) certificate.
  bool reachable(const std::string& uri) const;

  /// Snapshot of the fetch counters (consistent even mid-sweep).
  FetchStats stats() const;
  void reset_stats();

  std::size_t published_count() const;

 private:
  struct Entry {
    x509::CertPtr cert;
    bool unreachable = false;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  FetchStats stats_;
  std::uint64_t latency_ms_;
};

}  // namespace chainchaos::net
