// TLS Certificate handshake message codec.
//
// The server's certificate *list* (the paper's central object) travels in
// the Certificate handshake message. We implement both framings:
//   RFC 5246 §7.4.2 (TLS 1.2): handshake header (type 11, u24 length),
//     then a u24-prefixed vector of u24-prefixed ASN.1 certificates.
//   RFC 8446 §4.4.2 (TLS 1.3): adds a u8-prefixed request context and a
//     u16-prefixed (empty, in our profile) extension block per entry.
// The codec round-trips arbitrary lists — including the non-compliant
// ones — because the wire format itself never enforces chain structure;
// that is precisely the gap the paper studies.
#pragma once

#include <vector>

#include "support/bytes.hpp"
#include "support/result.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::tls {

/// TLS handshake message type for Certificate.
inline constexpr std::uint8_t kHandshakeTypeCertificate = 11;

/// Hard cap from the u24 length fields.
inline constexpr std::size_t kMaxU24 = 0xffffff;

enum class TlsVersion { kTls12, kTls13 };

/// Encodes a full handshake message (header + body) carrying the list.
Bytes encode_certificate_message(const std::vector<x509::CertPtr>& list,
                                 TlsVersion version);

/// Decodes a handshake message produced by encode_certificate_message
/// (or any spec-conformant peer). Parses each certificate eagerly.
Result<std::vector<x509::CertPtr>> decode_certificate_message(
    BytesView message, TlsVersion version);

}  // namespace chainchaos::tls
