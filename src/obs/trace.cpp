#include "obs/trace.hpp"

#include <chrono>

namespace chainchaos::obs {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kPipelineRecord: return "pipeline.record";
    case Stage::kX509Parse: return "x509.parse";
    case Stage::kChainAnalyze: return "chain.analyze";
    case Stage::kChainLeafPlacement: return "chain.leaf_placement";
    case Stage::kChainOrder: return "chain.order";
    case Stage::kChainCompleteness: return "chain.completeness";
    case Stage::kLintChainRules: return "lint.chain_rules";
    case Stage::kLintCertRules: return "lint.cert_rules";
    case Stage::kPathBuild: return "pathbuild.build";
    case Stage::kPathStep: return "pathbuild.step";
    case Stage::kAiaFetch: return "net.aia_fetch";
    case Stage::kCryptoVerify: return "crypto.verify";
    case Stage::kEngineSweep: return "engine.sweep";
    case Stage::kEngineShard: return "engine.shard";
    case Stage::kEngineSteal: return "engine.steal";
    case Stage::kServiceRead: return "service.read";
    case Stage::kServiceHandle: return "service.handle";
    case Stage::kServiceWrite: return "service.write";
    case Stage::kServiceQueueWait: return "service.queue_wait";
    case Stage::kClientRequest: return "client.request";
    case Stage::kChaosInput: return "chaos.input";
    case Stage::kCount: break;
  }
  return "?";
}

namespace detail {

ThreadBuffer::ThreadBuffer(std::size_t cap)
    : slots(new Slot[cap]), capacity(cap) {
  stack.reserve(32);
}

}  // namespace detail

namespace {

// Owner-thread histogram update. Relaxed load+store instead of
// fetch_add: the owning thread is the only writer, so the unlocked
// read-modify-write cannot lose updates, and it skips the lock-prefixed
// instruction (~6-8 ns each, three per span).
void bump_stage(detail::ThreadBuffer& buffer, Stage stage,
                std::uint64_t duration_ns) {
  detail::ThreadBuffer::StageCell& cell =
      buffer.stages[static_cast<std::size_t>(stage)];
  cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  cell.total_ns.store(
      cell.total_ns.load(std::memory_order_relaxed) + duration_ns,
      std::memory_order_relaxed);
  auto& bucket = cell.buckets[duration_bucket(duration_ns)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives exiting threads
  return *tracer;
}

void Tracer::set_buffer_capacity(std::size_t capacity) {
  capacity_.store(capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
}

std::size_t Tracer::buffer_capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() {
#if defined(__x86_64__)
  // rdtsc costs roughly half of steady_clock::now() and this is the
  // hottest instruction in the subsystem (two reads per span). Requires
  // an invariant TSC, which every x86-64 this project targets has; the
  // one-time 2 ms calibration window keeps the tick-to-ns ratio error
  // well under 0.1%, which only scales durations, never reorders them.
  struct Calibration {
    std::uint64_t tsc0;
    double ns_per_tick;
  };
  static const Calibration calib = [] {
    using namespace std::chrono;
    const steady_clock::time_point t0 = steady_clock::now();
    const std::uint64_t c0 = __builtin_ia32_rdtsc();
    for (;;) {
      const steady_clock::time_point t1 = steady_clock::now();
      if (t1 - t0 < milliseconds(2)) continue;
      const std::uint64_t c1 = __builtin_ia32_rdtsc();
      const double ns = static_cast<double>(
          duration_cast<nanoseconds>(t1 - t0).count());
      return Calibration{c0, ns / static_cast<double>(c1 - c0)};
    }
  }();
  return static_cast<std::uint64_t>(
      static_cast<double>(__builtin_ia32_rdtsc() - calib.tsc0) *
      calib.ns_per_tick);
#else
  using namespace std::chrono;
  static const steady_clock::time_point epoch = steady_clock::now();
  return static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now() - epoch).count());
#endif
}

detail::ThreadBuffer& Tracer::thread_buffer() {
  thread_local detail::ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<detail::ThreadBuffer>(buffer_capacity());
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->thread_id = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
    if (buffer->thread_id < kMaxFlightBuffers) {
      flight_registry_[buffer->thread_id].store(buffer,
                                                std::memory_order_release);
      flight_count_.store(buffer->thread_id + 1, std::memory_order_release);
    }
  }
  return *buffer;
}

std::size_t Tracer::flight_buffers(const detail::ThreadBuffer** out,
                                   std::size_t max) const {
  const std::uint32_t count = flight_count_.load(std::memory_order_acquire);
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < count && n < max; ++i) {
    const detail::ThreadBuffer* buffer =
        flight_registry_[i].load(std::memory_order_acquire);
    if (buffer != nullptr) out[n++] = buffer;
  }
  return n;
}

std::int32_t Tracer::begin_span(Stage stage) {
  detail::ThreadBuffer& buffer = thread_buffer();
  const std::size_t slot = buffer.cursor.load(std::memory_order_relaxed);
  if (slot >= buffer.capacity) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  SpanRecord& record = buffer.slots[slot].record;
  record.stage = stage;
  record.thread_id = buffer.thread_id;
  record.trace_id = buffer.trace_id;
  record.parent = buffer.stack.empty() ? -1 : buffer.stack.back();
  record.start_ns = now_ns();
  // Reserving the slot before the span completes lets children link to
  // it; collectors skip it until `done` flips.
  buffer.cursor.store(slot + 1, std::memory_order_release);
  buffer.stack.push_back(static_cast<std::int32_t>(slot));
  return static_cast<std::int32_t>(slot);
}

void Tracer::end_span(std::int32_t slot) {
  detail::ThreadBuffer& buffer = thread_buffer();
  detail::ThreadBuffer::Slot& cell = buffer.slots[static_cast<std::size_t>(slot)];
  const std::uint64_t end = now_ns();
  cell.record.end_ns = end;
  buffer.last_span_end_ns = end;
  if (!buffer.stack.empty() && buffer.stack.back() == slot) {
    buffer.stack.pop_back();
  }
  cell.done.store(true, std::memory_order_release);

  const std::uint64_t duration = end - cell.record.start_ns;
  bump_stage(buffer, cell.record.stage, duration);
}

void Tracer::record_duration(Stage stage, std::uint64_t duration_ns) {
  bump_stage(thread_buffer(), stage, duration_ns);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& buffer : buffers_) {
    const std::size_t n = buffer->cursor.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      buffer->slots[i].done.store(false, std::memory_order_relaxed);
    }
    buffer->cursor.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
    for (auto& cell : buffer->stages) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.total_ns.store(0, std::memory_order_relaxed);
      for (auto& bucket : cell.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
}

std::vector<SpanRecord> Tracer::collect() const {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    const std::size_t n = buffer->cursor.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (!buffer->slots[i].done.load(std::memory_order_acquire)) continue;
      out.push_back(buffer->slots[i].record);
    }
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

StageStatsSnapshot Tracer::stage_stats() const {
  StageStatsSnapshot snapshot{};
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const auto& cell = buffer->stages[s];
      snapshot[s].count += cell.count.load(std::memory_order_relaxed);
      snapshot[s].total_ns += cell.total_ns.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kDurationBucketCount; ++b) {
        snapshot[s].buckets[b] +=
            cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  return snapshot;
}

TraceContext::TraceContext(std::uint64_t id) {
  if (!Tracer::instance().enabled()) return;
  detail::ThreadBuffer& buffer = Tracer::instance().thread_buffer();
  previous_ = buffer.trace_id;
  buffer.trace_id = id;
  active_ = true;
}

TraceContext::~TraceContext() {
  if (!active_) return;
  Tracer::instance().thread_buffer().trace_id = previous_;
}

std::uint64_t trace_id_from_string(std::string_view s) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash == 0 ? 1 : hash;
}

}  // namespace chainchaos::obs
