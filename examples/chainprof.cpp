// chainprof: per-stage profiling of the analysis pipeline (DESIGN.md
// §5.11).
//
// Three modes, selected by flags:
//
//   chainprof --domains 2000                in-process corpus sweep:
//       runs every record through parse → analyzers → chainlint →
//       PathBuilder with the tracer on, then prints the aggregated
//       per-stage table (count, total, p50/p99, % of cpu time) and a
//       coverage line asserting the profile accounts for the sweep's
//       wall clock.
//
//   chainprof --port P [--repeat N]         replay against a live chaind:
//       POSTs the generated chains to /v1/analyze over one keep-alive
//       connection and profiles the client side (client.request spans);
//       pair with a daemon started with --trace and `chainq trace` for
//       the server half.
//
//   chainprof --check-exposition FILE       validate a Prometheus text
//       exposition document (what scripts/obs_smoke.sh runs over
//       GET /v1/metrics output); exit 0 iff the checker accepts it.
//
// --trace-json FILE additionally writes the raw spans as
// chrome://tracing JSON in the first two modes.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chain/analyzer.hpp"
#include "cli_common.hpp"
#include "dataset/corpus.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "obs/export.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "pathbuild/path_builder.hpp"
#include "service/client.hpp"
#include "x509/certificate.hpp"

using namespace chainchaos;

namespace {

int check_exposition_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "chainprof: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto checked = obs::check_exposition(text.str());
  if (!checked.ok()) {
    std::fprintf(stderr, "chainprof: %s fails exposition check: %s\n",
                 path.c_str(), checked.error().to_string().c_str());
    return 1;
  }
  std::printf("%s: valid Prometheus exposition (%zu samples)\n", path.c_str(),
              checked.value());
  return 0;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

unsigned distinct_threads(const std::vector<obs::SpanRecord>& spans) {
  std::uint32_t max_tid = 0;
  for (const obs::SpanRecord& span : spans) {
    max_tid = std::max(max_tid, span.thread_id);
  }
  return spans.empty() ? 1 : max_tid + 1;
}

/// Prints the profile plus the coverage line: root spans (parent == -1)
/// are mutually non-overlapping per thread, so their summed duration
/// against wall × threads says how much of the run the trace explains.
void print_profile(const std::vector<obs::SpanRecord>& spans,
                   std::uint64_t wall_ns) {
  const unsigned threads = distinct_threads(spans);
  const auto profile = obs::aggregate_profile(spans);
  std::fputs(obs::profile_table(profile, wall_ns, threads).c_str(), stdout);

  std::uint64_t root_ns = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent < 0) root_ns += span.end_ns - span.start_ns;
  }
  const double coverage =
      wall_ns == 0 ? 0.0
                   : 100.0 * static_cast<double>(root_ns) /
                         (static_cast<double>(wall_ns) * threads);
  std::printf("\nstage total = %.1f%% of wall clock "
              "(wall %.1f ms, %u thread%s, %zu spans, %llu dropped)\n",
              coverage, static_cast<double>(wall_ns) / 1e6, threads,
              threads == 1 ? "" : "s", spans.size(),
              static_cast<unsigned long long>(obs::Tracer::instance().dropped()));
}

int sweep_mode(std::size_t domains, std::uint64_t seed, unsigned threads,
               const std::string& trace_json) {
  std::printf("chainprof: sweeping %zu synthetic domains (seed %llu, "
              "threads %u)...\n",
              domains, static_cast<unsigned long long>(seed), threads);
  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  dataset::Corpus corpus(std::move(config));

  const chain::CompletenessOptions completeness = [&] {
    chain::CompletenessOptions o;
    o.store = &corpus.stores().union_store;
    o.aia = &corpus.aia();
    return o;
  }();
  const chain::ComplianceAnalyzer analyzer(completeness);
  const lint::Linter linter{lint::LintOptions{}};

  obs::Tracer::instance().set_enabled(true);
  obs::Tracer::instance().reset();

  engine::AnalysisRequest request;
  request.records = &corpus.records();
  request.shards.threads = threads;
  // The whole pipeline runs inside per_record (rather than via
  // request.analyzer) so every stage nests under one pipeline.record
  // span per domain: parse → analyze → lint → pathbuild.
  request.per_record = [&](const dataset::DomainRecord& record, std::size_t,
                           const chain::ComplianceReport*,
                           engine::ShardTally&) {
    CHAINCHAOS_SPAN(obs::Stage::kPipelineRecord);
    std::vector<x509::CertPtr> chain;
    chain.reserve(record.observation.certificates.size());
    for (const x509::CertPtr& cert : record.observation.certificates) {
      auto parsed = x509::parse_certificate(cert->der);
      if (!parsed.ok()) return;
      chain.push_back(std::move(parsed).value());
    }
    chain::ChainObservation observation;
    observation.domain = record.observation.domain;
    observation.certificates = std::move(chain);

    const chain::ComplianceReport report = analyzer.analyze(observation);
    linter.lint(observation, report);

    pathbuild::BuildPolicy policy;
    policy.aia_completion = true;
    pathbuild::PathBuilder builder(policy, &corpus.stores().union_store,
                                   &corpus.aia());
    builder.set_cache_learning(false);
    builder.build(observation.certificates, observation.domain);
  };

  const std::uint64_t wall_start = obs::Tracer::now_ns();
  const engine::AnalysisResult result = engine::run(request);
  const std::uint64_t wall_ns = obs::Tracer::now_ns() - wall_start;
  obs::Tracer::instance().set_enabled(false);

  const std::vector<obs::SpanRecord> spans = obs::Tracer::instance().collect();
  std::printf("%zu records in %.2fs\n\n", result.records_processed,
              result.elapsed_seconds);
  print_profile(spans, wall_ns);

  if (!trace_json.empty()) {
    if (!write_file(trace_json,
                    obs::chrome_trace_json(
                        spans, obs::Tracer::instance().dropped()))) {
      std::fprintf(stderr, "chainprof: cannot write %s\n", trace_json.c_str());
      return 1;
    }
    std::printf("wrote chrome trace to %s\n", trace_json.c_str());
  }
  return 0;
}

int replay_mode(std::uint16_t port, std::size_t domains, std::uint64_t seed,
                std::size_t repeat, const std::string& trace_json) {
  std::printf("chainprof: replaying %zu chains x%zu against "
              "127.0.0.1:%u...\n",
              domains, repeat, port);
  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  dataset::Corpus corpus(std::move(config));

  std::vector<std::pair<std::string, std::string>> bodies;  // domain, pem
  bodies.reserve(corpus.records().size());
  for (const dataset::DomainRecord& record : corpus.records()) {
    std::string pem;
    for (const x509::CertPtr& cert : record.observation.certificates) {
      pem += x509::to_pem(*cert);
    }
    bodies.emplace_back(record.observation.domain, std::move(pem));
  }

  obs::Tracer::instance().set_enabled(true);
  obs::Tracer::instance().reset();

  service::Client client(port);
  std::size_t failures = 0;
  const std::uint64_t wall_start = obs::Tracer::now_ns();
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    for (const auto& [domain, pem] : bodies) {
      const auto response = client.analyze(pem, domain);
      if (!response.ok() || response.value().status != 200) ++failures;
    }
  }
  const std::uint64_t wall_ns = obs::Tracer::now_ns() - wall_start;
  obs::Tracer::instance().set_enabled(false);

  const std::vector<obs::SpanRecord> spans = obs::Tracer::instance().collect();
  std::printf("%zu requests, %zu failures\n\n", bodies.size() * repeat,
              failures);
  print_profile(spans, wall_ns);

  if (!trace_json.empty()) {
    if (!write_file(trace_json,
                    obs::chrome_trace_json(
                        spans, obs::Tracer::instance().dropped()))) {
      std::fprintf(stderr, "chainprof: cannot write %s\n", trace_json.c_str());
      return 1;
    }
    std::printf("wrote chrome trace to %s\n", trace_json.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t domains = 2000;
  std::uint64_t seed = 833;
  unsigned threads = 1;
  std::size_t repeat = 1;
  std::uint16_t port = 0;
  std::size_t buffer = 0;
  std::string trace_json;
  std::string exposition;

  cli::Flags flags;
  flags.add("--domains", &domains, "N");
  flags.add("--seed", &seed, "S");
  flags.add("--threads", &threads, "T");
  flags.add("--port", &port, "P");
  flags.add("--repeat", &repeat, "N");
  flags.add("--buffer", &buffer, "SPANS");
  flags.add("--trace-json", &trace_json, "FILE");
  flags.add("--check-exposition", &exposition, "FILE");
  if (!flags.parse(argc, argv)) return 1;

  if (!exposition.empty()) return check_exposition_file(exposition);
  if (buffer != 0) obs::Tracer::instance().set_buffer_capacity(buffer);
  if (repeat == 0) repeat = 1;

  if (port != 0) {
    // Replay defaults to a smaller corpus: every chain is a round trip.
    if (domains == 2000) domains = 100;
    return replay_mode(port, domains, seed, repeat, trace_json);
  }
  return sweep_mode(domains, seed, threads, trace_json);
}
