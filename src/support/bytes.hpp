// Byte-buffer primitives shared by every module.
//
// The whole library moves certificates around as opaque byte strings
// (DER encodings, hashes, signatures), so a single well-known alias plus
// a handful of conversion helpers keeps signatures uniform.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace chainchaos {

/// Owning byte buffer. DER blobs, digests and signatures all use this.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes buffer from the raw characters of a string (no encoding).
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as raw characters (no encoding).
std::string to_string(BytesView b);

/// Lower-case hexadecimal rendering, e.g. {0xde,0xad} -> "dead".
std::string hex_encode(BytesView b);

/// Parses lower/upper-case hex. Returns nullopt on odd length or bad digit.
std::optional<Bytes> hex_decode(std::string_view hex);

/// RFC 4648 base64 (with padding).
std::string base64_encode(BytesView b);

/// Strict base64 decoder. Returns nullopt on bad length/character/padding.
std::optional<Bytes> base64_decode(std::string_view text);

/// Appends `tail` to `head` in place.
void append(Bytes& head, BytesView tail);

/// Constant-style equality (length then contents); not constant-time.
bool equal(BytesView a, BytesView b);

}  // namespace chainchaos
