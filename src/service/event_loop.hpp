// Event-loop plumbing beneath chaind's readiness-driven server core
// (DESIGN.md §5.15): a Poller that prefers epoll(7) on Linux but always
// carries a portable poll(2) backend, and a hashed TimeoutWheel that
// tracks one deadline per connection without a timer thread or a sorted
// structure.
//
// Both classes are single-thread affine by design — only the server's
// event-loop thread touches them — so neither takes a lock anywhere.
#pragma once

#include <poll.h>

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace chainchaos::service {

/// Readiness multiplexer over many non-blocking fds. Registration keys
/// every fd to an opaque u64 tag (the server uses connection ids, which
/// unlike fds are never recycled — a stale event can therefore never be
/// misrouted to a new connection that reused the fd).
class Poller {
 public:
  struct Event {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< POLLERR/POLLHUP-class condition
  };

  /// `force_poll` selects the poll(2) backend even where epoll exists
  /// (exercised by tests and chaind --poll so the fallback stays honest).
  explicit Poller(bool force_poll = false);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool using_epoll() const { return epoll_fd_ >= 0; }

  void add(int fd, std::uint64_t tag, bool want_read, bool want_write);
  void set(int fd, bool want_read, bool want_write);  ///< update interest
  void remove(int fd);

  std::size_t watched() const { return interests_.size(); }

  /// Blocks up to `timeout_ms`, replaces `out` with the ready set.
  /// Returns the number of events (0 on timeout; EINTR reads as 0).
  int wait(std::vector<Event>& out, int timeout_ms);

 private:
  struct Interest {
    std::uint64_t tag = 0;
    bool read = false;
    bool write = false;
  };

  int epoll_fd_ = -1;  ///< -1 = poll(2) backend
  /// fd → interest. The epoll backend keeps it too: epoll_ctl(MOD)
  /// needs the full event mask and tag rebuilt on every change.
  std::unordered_map<int, Interest> interests_;
  std::vector<pollfd> scratch_;  ///< poll backend: rebuilt per wait()
};

/// Hashed timer wheel: slots × tick granularity, one pending deadline
/// per id. schedule() on an existing id moves its deadline; entries left
/// behind in old slots are dropped lazily when their slot comes around
/// (the id → authoritative-deadline map decides, the slot lists are only
/// hints). Deadlines beyond one revolution are re-hashed on expiry, so
/// arbitrarily long timeouts cost one spurious visit per revolution —
/// never a missed firing.
class TimeoutWheel {
 public:
  using Clock = std::chrono::steady_clock;

  TimeoutWheel(std::size_t slot_count, int tick_ms, Clock::time_point origin);

  void schedule(std::uint64_t id, Clock::time_point deadline);
  void cancel(std::uint64_t id);

  /// Appends every id whose deadline has passed to `due` (and forgets
  /// it); the caller re-checks its own authoritative state before
  /// acting, because a deadline may have been re-armed since.
  void collect_due(Clock::time_point now, std::vector<std::uint64_t>& due);

  std::size_t pending() const { return deadlines_.size(); }
  int tick_ms() const { return tick_ms_; }

 private:
  std::uint64_t tick_index(Clock::time_point t) const;
  void insert(std::uint64_t id, Clock::time_point deadline);

  std::vector<std::vector<std::uint64_t>> slots_;
  std::unordered_map<std::uint64_t, Clock::time_point> deadlines_;
  Clock::time_point origin_;
  int tick_ms_;
  std::uint64_t cursor_ = 0;  ///< last fully processed tick index
};

}  // namespace chainchaos::service
