#include "tls/record.hpp"

namespace chainchaos::tls {

Bytes encode_records(ContentType type, BytesView payload) {
  Bytes out;
  std::size_t offset = 0;
  do {
    const std::size_t fragment =
        std::min(payload.size() - offset, kMaxFragment);
    out.push_back(static_cast<std::uint8_t>(type));
    out.push_back(static_cast<std::uint8_t>(kRecordVersion >> 8));
    out.push_back(static_cast<std::uint8_t>(kRecordVersion));
    out.push_back(static_cast<std::uint8_t>(fragment >> 8));
    out.push_back(static_cast<std::uint8_t>(fragment));
    append(out, payload.subspan(offset, fragment));
    offset += fragment;
  } while (offset < payload.size());
  return out;
}

Result<Bytes> decode_records(BytesView wire, ContentType expected_type) {
  Bytes payload;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    if (wire.size() - pos < 5) {
      return make_error("tls.record_truncated", "header");
    }
    const auto type = static_cast<ContentType>(wire[pos]);
    if (type != expected_type) {
      return make_error("tls.record_type", "unexpected content type");
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>((wire[pos + 1] << 8) | wire[pos + 2]);
    if ((version >> 8) != 0x03) {
      return make_error("tls.record_version", "not a TLS record");
    }
    const std::size_t length =
        static_cast<std::size_t>((wire[pos + 3] << 8) | wire[pos + 4]);
    if (length > kMaxFragment) {
      return make_error("tls.record_overflow", "fragment above 2^14");
    }
    if (wire.size() - pos - 5 < length) {
      return make_error("tls.record_truncated", "fragment");
    }
    append(payload, wire.subspan(pos + 5, length));
    pos += 5 + length;
  }
  return payload;
}

const char* to_string(AlertDescription alert) {
  switch (alert) {
    case AlertDescription::kCloseNotify: return "close_notify";
    case AlertDescription::kBadCertificate: return "bad_certificate";
    case AlertDescription::kUnsupportedCertificate:
      return "unsupported_certificate";
    case AlertDescription::kCertificateExpired: return "certificate_expired";
    case AlertDescription::kCertificateUnknown: return "certificate_unknown";
    case AlertDescription::kUnknownCa: return "unknown_ca";
    case AlertDescription::kDecodeError: return "decode_error";
    case AlertDescription::kInternalError: return "internal_error";
  }
  return "?";
}

AlertDescription alert_for(pathbuild::BuildStatus status) {
  using pathbuild::BuildStatus;
  switch (status) {
    case BuildStatus::kOk:
      return AlertDescription::kCloseNotify;
    case BuildStatus::kNoIssuerFound:
    case BuildStatus::kUntrustedRoot:
      return AlertDescription::kUnknownCa;
    case BuildStatus::kExpired:
      return AlertDescription::kCertificateExpired;
    case BuildStatus::kEmptyInput:
      return AlertDescription::kDecodeError;
    case BuildStatus::kHostnameMismatch:
    case BuildStatus::kNotACa:
    case BuildStatus::kPathLenViolated:
    case BuildStatus::kNameConstraintViolation:
    case BuildStatus::kSelfSignedLeaf:
      return AlertDescription::kBadCertificate;
    case BuildStatus::kBadEku:
      return AlertDescription::kUnsupportedCertificate;
    case BuildStatus::kInputListTooLong:
    case BuildStatus::kDepthExceeded:
    case BuildStatus::kWorkBudgetExceeded:
      return AlertDescription::kInternalError;
  }
  return AlertDescription::kInternalError;
}

Bytes encode_alert(AlertDescription alert) {
  const std::uint8_t level =
      alert == AlertDescription::kCloseNotify ? 1 : 2;  // warning : fatal
  return Bytes{level, static_cast<std::uint8_t>(alert)};
}

Result<AlertDescription> decode_alert(BytesView payload) {
  if (payload.size() != 2) return make_error("tls.bad_alert", "length");
  if (payload[0] != 1 && payload[0] != 2) {
    return make_error("tls.bad_alert", "level");
  }
  return static_cast<AlertDescription>(payload[1]);
}

}  // namespace chainchaos::tls
