// Regenerates Figure 3 / finding I-2: the assiste6.serpro.gov.br case —
// a 17-certificate list whose only valid path is 8 -> 1 -> 16 -> 0.
// GnuTLS caps the *input list* at 16 certificates and rejects it; every
// other client deduplicates/reorders and succeeds.
#include <cstdio>

#include "bench_common.hpp"
#include "chain/topology.hpp"
#include "clients/profiles.hpp"
#include "difftest/harness.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  dataset::CorpusConfig config;
  config.domain_count = 0;  // exemplars only
  dataset::Corpus corpus(config);

  const dataset::DomainRecord* serpro =
      corpus.exemplar("assiste6.serpro.gov.br");
  if (serpro == nullptr) {
    std::fprintf(stderr, "exemplar missing\n");
    return 1;
  }

  std::printf("Certificate list of assiste6.serpro.gov.br "
              "(%zu certificates):\n\n%s\n",
              serpro->observation.certificates.size(),
              chain::Topology::build(serpro->observation.certificates)
                  .to_ascii()
                  .c_str());

  report::Table table("Figure 3 / I-2: client verdicts");
  table.header({"Client", "status", "path len", "candidates", "paper"});
  for (const clients::ClientProfile& profile : clients::all_profiles()) {
    pathbuild::PathBuilder builder(profile.policy,
                                   &corpus.stores().union_store,
                                   &corpus.aia());
    const pathbuild::BuildResult result = builder.build(
        serpro->observation.certificates, serpro->observation.domain);
    const char* paper =
        profile.kind == clients::ClientKind::kGnuTls
            ? "FAILS: list of 17 > cap 16 (limit is on the list, not the path)"
            : profile.kind == clients::ClientKind::kMbedTls
                  ? "forward scan strands at C16 (not reported in paper)"
                  : "builds the 4-cert path";
    table.row({profile.name, to_string(result.status),
               std::to_string(result.path.size()),
               std::to_string(result.stats.candidates_considered), paper});
  }
  std::fputs(table.render().c_str(), stdout);

  // Sensitivity: trim the list to 16 and GnuTLS recovers.
  std::vector<x509::CertPtr> trimmed = serpro->observation.certificates;
  // Drop one junk certificate (position 15 is filler, not on the path).
  trimmed.erase(trimmed.begin() + 15);
  const clients::ClientProfile gnutls =
      clients::make_profile(clients::ClientKind::kGnuTls);
  pathbuild::PathBuilder builder(gnutls.policy, &corpus.stores().union_store);
  const auto retried = builder.build(trimmed, serpro->observation.domain);
  std::printf("\nGnuTLS with the list trimmed to 16 certificates: %s\n",
              to_string(retried.status));

  bench::print_paper_note(
      "Figure 3",
      "GnuTLS fails chains whose *served list* exceeds 16 certificates "
      "even when the constructible path is short — 10 real chains hit "
      "this in the paper's corpus");
  return 0;
}
