#include "chaos/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

#include "chain/analyzer.hpp"
#include "chaos/socket_chaos.hpp"
#include "crypto/sha256.hpp"
#include "dataset/corpus.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "parsdiff/diff.hpp"
#include "parsdiff/profile.hpp"
#include "pathbuild/path_builder.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace chainchaos::chaos {

namespace {

/// Golden-ratio stride: consecutive input indices get maximally spread
/// seeds, derived arithmetically (no shared Rng state to race on).
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

using Clock = std::chrono::steady_clock;

/// "PD-xx reject=<comma-joined profile names>" for a split panel; empty
/// when the panel agrees. Pure function of the input bytes.
std::string describe_divergence(const std::vector<Bytes>& certs) {
  const parsdiff::ChainDiff diff = parsdiff::diff_chain(certs);
  if (!diff.discrepancy) return {};
  std::string out(diff.pd_class);
  out += " reject=";
  const auto& panel = parsdiff::profiles();
  bool first = true;
  for (std::size_t p = 0; p < panel.size(); ++p) {
    if (diff.outcomes[p].accepted) continue;
    if (!first) out += ',';
    first = false;
    out += panel[p].name;
  }
  return out;
}

}  // namespace

struct Campaign::State {
  std::unique_ptr<dataset::Corpus> corpus;
  std::unique_ptr<ChainMutator> mutator;
  std::unique_ptr<service::Server> server;  ///< daemon mode, port == 0
  std::uint16_t port = 0;
};

Campaign::Campaign(CampaignOptions options) : options_(std::move(options)) {}

Campaign::~Campaign() = default;

std::string Campaign::analyze_direct(const MutatedChain& input) {
  // Stage 1: decode. Any certificate that fails to parse classifies the
  // whole input (the strictest client behaviour; byte-level mutations
  // mostly terminate here with a clean error code).
  std::vector<x509::CertPtr> chain;
  chain.reserve(input.certs.size());
  for (const Bytes& der : input.certs) {
    auto cert = x509::parse_certificate(der);
    if (!cert.ok()) return "parse:" + cert.error().code;
    chain.push_back(std::move(cert).value());
  }
  if (chain.empty()) return "empty";

  // Stage 2: the full analysis pipeline, exactly as measure_corpus and
  // chaind run it.
  chain::ChainObservation observation;
  observation.certificates = chain;

  chain::CompletenessOptions completeness;
  completeness.store = &state_->corpus->stores().union_store;
  completeness.aia = &state_->corpus->aia();
  completeness.aia_enabled = true;
  const chain::ComplianceAnalyzer analyzer(completeness);
  const chain::ComplianceReport report = analyzer.analyze(observation);

  const lint::Linter linter{lint::LintOptions{}};
  const lint::LintReport lint_report = linter.lint(observation, report);

  pathbuild::BuildPolicy policy;
  policy.aia_completion = true;
  policy.aia_max_retries = options_.aia_max_retries;
  pathbuild::PathBuilder builder(policy,
                                 &state_->corpus->stores().union_store,
                                 &state_->corpus->aia());
  builder.set_cache_learning(false);
  const pathbuild::BuildResult build = builder.build(chain);

  return std::string("ok:") + chain::to_string(report.leaf_placement) + "/" +
         pathbuild::to_string(build.status) +
         "/lint=" + std::to_string(lint_report.findings.size());
}

CampaignSummary Campaign::run() {
  // --- materialize the fixture -------------------------------------------
  state_ = std::make_unique<State>();
  dataset::CorpusConfig corpus_config;
  corpus_config.domain_count = options_.corpus_domains;
  state_->corpus = std::make_unique<dataset::Corpus>(corpus_config);

  if (options_.aia_permanent_failures) {
    net::FaultSpec fault;
    fault.permanent = true;
    state_->corpus->aia().inject_fault_all(fault);
  } else if (options_.aia_transient_failures > 0) {
    net::FaultSpec fault;
    fault.transient_failures = options_.aia_transient_failures;
    state_->corpus->aia().inject_fault_all(fault);
  }

  state_->mutator = std::make_unique<ChainMutator>(
      ChainMutator::from_corpus(*state_->corpus));

  if (options_.through_daemon) {
    if (options_.daemon_port != 0) {
      state_->port = options_.daemon_port;
    } else {
      service::ServerConfig server_config;
      server_config.handler.roots = &state_->corpus->stores().union_store;
      server_config.handler.aia = &state_->corpus->aia();
      server_config.handler.aia_max_retries = options_.aia_max_retries;
      if (options_.socket_faults) {
        // Hostile connections must be evicted well inside the fault
        // budget; the sweep's well-behaved loopback clients never get
        // near these deadlines.
        server_config.read_timeout_ms = 800;
        server_config.write_timeout_ms = 800;
      }
      state_->server = std::make_unique<service::Server>(server_config);
      auto port = state_->server->start();
      if (!port.ok()) {
        CampaignSummary failed;
        failed.transport_failures = options_.count;
        failed.digest = "server-start-failed:" + port.error().code;
        return failed;
      }
      state_->port = port.value();
    }
  }

  const std::vector<MutationClass> classes =
      options_.classes.empty()
          ? [] {
              std::vector<MutationClass> all;
              for (const MutationSpec& s : all_mutations()) all.push_back(s.cls);
              return all;
            }()
          : options_.classes;

  // --- drive every input --------------------------------------------------
  // Results land in an index-keyed vector: whatever order the workers
  // finish in, the merge below reads them 0..count-1, so summaries are
  // independent of scheduling.
  std::vector<InputResult> results(options_.count);
  const unsigned threads = engine::resolve_threads(options_.threads);

  // Daemon mode: one keep-alive client per worker (Client is
  // single-connection and not thread-safe by design).
  std::vector<std::unique_ptr<service::Client>> clients;
  if (options_.through_daemon) {
    for (unsigned i = 0; i < threads; ++i) {
      clients.push_back(std::make_unique<service::Client>(state_->port));
    }
  }

  engine::ShardOptions shards;
  shards.threads = threads;
  engine::for_each_shard(
      options_.count, shards,
      [&](std::size_t first, std::size_t last, unsigned worker) {
        for (std::size_t i = first; i < last; ++i) {
          const MutationClass cls = classes[i % classes.size()];
          const std::uint64_t seed =
              options_.seed + kSeedStride * (static_cast<std::uint64_t>(i) + 1);
          InputResult& result = results[i];
          result.mutation_id = spec(cls).id;
          // Tag every span this input produces (parse, analyze, lint,
          // pathbuild, AIA) with an index-derived trace id so a chrome
          // trace of a campaign groups by input.
          const ::chainchaos::obs::TraceContext trace_ctx(
              ::chainchaos::obs::trace_id_from_string(
                  "chaos-" + std::to_string(i)));
          CHAINCHAOS_SPAN(::chainchaos::obs::Stage::kChaosInput);
          const auto start = Clock::now();
          try {
            const MutatedChain input = state_->mutator->mutate(cls, seed);
            // Byte-level classes additionally run the parser panel:
            // which leniency profiles accept what the mutation produced
            // (the structure-level classes mutate parsed-model state, so
            // the panel would only re-measure the base chains).
            if (!result.mutation_id.empty() && result.mutation_id[0] == 'B') {
              result.divergence = describe_divergence(input.certs);
            }
            if (options_.through_daemon) {
              const Bytes body = input.wire();
              auto response = clients[worker]->analyze(
                  std::string(body.begin(), body.end()));
              if (!response.ok()) {
                result.outcome = "net:" + response.error().code;
                result.transport_failed = true;
              } else {
                result.outcome =
                    "http:" + std::to_string(response.value().status) + ":" +
                    hex_encode(crypto::Sha256::digest(response.value().body))
                        .substr(0, 12);
              }
            } else {
              result.outcome = analyze_direct(input);
            }
          } catch (const std::exception& e) {
            result.outcome = std::string("crash:") + e.what();
            result.crashed = true;
          } catch (...) {
            result.outcome = "crash:unknown";
            result.crashed = true;
          }
          const auto elapsed_us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - start)
                  .count();
          result.elapsed_us = static_cast<std::uint64_t>(elapsed_us);
          if (options_.per_input_deadline_ms != 0 &&
              result.elapsed_us / 1000 > options_.per_input_deadline_ms) {
            result.hung = true;
          }
          // A contract violation is a chainwatch finding: the event ring
          // (and the flight recorder over it) records which input broke
          // the process, tagged with the same trace id as its spans.
          if ((result.crashed || result.hung || result.transport_failed) &&
              ::chainchaos::obs::EventLog::instance().enabled()) {
            ::chainchaos::obs::EventLog::instance().emit(
                ::chainchaos::obs::EventLevel::kError, "chaos.finding",
                result.mutation_id + ":" + result.outcome, i, 0,
                ::chainchaos::obs::trace_id_from_string(
                    "chaos-" + std::to_string(i)));
          }
        }
      });

  // --- socket faults (same daemon, after the byte-level sweep) -----------
  SocketFaultReport socket_report;
  if (options_.through_daemon && options_.socket_faults) {
    SocketFaultOptions fault_options;
    fault_options.port = state_->port;
    fault_options.clients = options_.socket_fault_clients;
    fault_options.storm_connections = options_.socket_fault_storm;
    socket_report = run_socket_faults(fault_options);
  }

  if (state_->server) state_->server->stop();

  // --- ordered merge -------------------------------------------------------
  CampaignSummary summary;
  summary.inputs = options_.count;
  summary.socket_faults = socket_report.outcomes;
  summary.socket_fault_failures = socket_report.failures;
  std::string transcript;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const InputResult& result = results[i];
    summary.outcomes[result.mutation_id][result.outcome] += 1;
    CampaignSummary::ClassTiming& timing = summary.timings[result.mutation_id];
    ++timing.count;
    timing.total_us += result.elapsed_us;
    timing.max_us = std::max(timing.max_us, result.elapsed_us);
    if (!result.divergence.empty()) {
      summary.profile_divergence[result.mutation_id][result.divergence] += 1;
    }
    if (result.crashed) ++summary.crashes;
    if (result.hung) ++summary.hangs;
    if (result.transport_failed) ++summary.transport_failures;
    transcript += std::to_string(i);
    transcript += ':';
    transcript += result.mutation_id;
    transcript += ':';
    transcript += result.outcome;
    transcript += '\n';
  }
  summary.digest = hex_encode(crypto::Sha256::digest(to_bytes(transcript)));
  return summary;
}

std::string CampaignSummary::to_string() const {
  std::string out;
  out += "inputs=" + std::to_string(inputs);
  out += " crashes=" + std::to_string(crashes);
  out += " hangs=" + std::to_string(hangs);
  out += " transport_failures=" + std::to_string(transport_failures);
  if (!socket_faults.empty()) {
    out += " socket_fault_failures=" + std::to_string(socket_fault_failures);
  }
  out += contract_ok() ? " contract=ok\n" : " contract=VIOLATED\n";
  for (const auto& [mutation_id, histogram] : outcomes) {
    out += mutation_id;
    out += ":\n";
    for (const auto& [outcome, count] : histogram) {
      out += "  " + outcome + " " + std::to_string(count) + "\n";
    }
  }
  for (const auto& [mutation_id, histogram] : profile_divergence) {
    out += mutation_id;
    out += " divergence:\n";
    for (const auto& [desc, count] : histogram) {
      out += "  " + desc + " " + std::to_string(count) + "\n";
    }
  }
  if (!socket_faults.empty()) {
    out += "socket faults:\n";
    for (const auto& [name, outcome] : socket_faults) {
      out += "  " + name + " " + outcome + "\n";
    }
  }
  out += "digest=" + digest + "\n";
  return out;
}

std::string CampaignSummary::timing_report() const {
  std::vector<std::pair<std::string, ClassTiming>> rows(timings.begin(),
                                                        timings.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) {
      return a.second.total_us > b.second.total_us;
    }
    return a.first < b.first;  // deterministic tie-break
  });
  std::string out =
      "class  count  total_ms   mean_us    max_us\n";
  char line[128];
  for (const auto& [id, t] : rows) {
    const double mean =
        t.count == 0 ? 0.0
                     : static_cast<double>(t.total_us) /
                           static_cast<double>(t.count);
    std::snprintf(line, sizeof line, "%-5s %6zu %9.1f %9.1f %9llu\n",
                  id.c_str(), t.count,
                  static_cast<double>(t.total_us) / 1000.0, mean,
                  static_cast<unsigned long long>(t.max_us));
    out += line;
  }
  return out;
}

}  // namespace chainchaos::chaos
