#include <gtest/gtest.h>

#include "pathbuild/path_builder.hpp"
#include "x509/builder.hpp"

namespace chainchaos::pathbuild {
namespace {

using x509::CertificateBuilder;
using x509::CertPtr;
using x509::make_identity;
using x509::SigningIdentity;

constexpr std::int64_t kNow = 1800000000;
constexpr std::int64_t kYear = 31557600;

/// Engine-level tests: exercise each BuildPolicy knob in isolation
/// against purpose-built chains.
class PathBuilderFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("PB Root", "PB", "US")));
    CertificateBuilder rb;
    rb.subject(root_id_->name).as_ca().public_key(root_id_->keys.pub);
    root_ = new CertPtr(rb.self_sign(root_id_->keys));

    i1_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("PB I1", "PB", "US")));
    CertificateBuilder i1b;
    i1b.subject(i1_id_->name).as_ca().public_key(i1_id_->keys.pub);
    i1_ = new CertPtr(i1b.sign(*root_id_));

    i2_id_ = new SigningIdentity(
        make_identity(asn1::Name::make("PB I2", "PB", "US")));
    CertificateBuilder i2b;
    i2b.subject(i2_id_->name).as_ca().public_key(i2_id_->keys.pub);
    i2_ = new CertPtr(i2b.sign(*i1_id_));

    CertificateBuilder lb;
    lb.as_leaf("pb.example.com");
    leaf_ = new CertPtr(lb.sign(*i2_id_));
  }

  void SetUp() override { store_.add(*root_); }

  BuildResult build(const BuildPolicy& policy,
                    const std::vector<CertPtr>& list,
                    const std::string& host = "pb.example.com") {
    PathBuilder builder(policy, &store_, &aia_, &cache_);
    return builder.build(list, host);
  }

  truststore::RootStore store_{"pb"};
  net::AiaRepository aia_;
  IntermediateCache cache_;

  static SigningIdentity *root_id_, *i1_id_, *i2_id_;
  static CertPtr *root_, *i1_, *i2_, *leaf_;
};

SigningIdentity* PathBuilderFixture::root_id_ = nullptr;
SigningIdentity* PathBuilderFixture::i1_id_ = nullptr;
SigningIdentity* PathBuilderFixture::i2_id_ = nullptr;
CertPtr* PathBuilderFixture::root_ = nullptr;
CertPtr* PathBuilderFixture::i1_ = nullptr;
CertPtr* PathBuilderFixture::i2_ = nullptr;
CertPtr* PathBuilderFixture::leaf_ = nullptr;

TEST_F(PathBuilderFixture, BuildsCompliantChainAndAppendsStoreRoot) {
  const BuildResult result = build(BuildPolicy{}, {*leaf_, *i2_, *i1_});
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  ASSERT_EQ(result.path.size(), 4u);
  EXPECT_TRUE(equal(result.path[3]->fingerprint, (*root_)->fingerprint));
}

TEST_F(PathBuilderFixture, EmptyInput) {
  EXPECT_EQ(build(BuildPolicy{}, {}).status, BuildStatus::kEmptyInput);
}

TEST_F(PathBuilderFixture, ReorderingHandlesShuffledList) {
  BuildPolicy policy;
  EXPECT_TRUE(build(policy, {*leaf_, *i1_, *i2_}).ok());
  EXPECT_TRUE(build(policy, {*leaf_, *i1_, *i2_, *root_}).ok());
}

TEST_F(PathBuilderFixture, NoReorderFailsOnShuffledList) {
  BuildPolicy policy;
  policy.reorder = false;
  const BuildResult result = build(policy, {*leaf_, *i1_, *i2_});
  EXPECT_EQ(result.status, BuildStatus::kNoIssuerFound);

  // In issuance order the same client succeeds.
  EXPECT_TRUE(build(policy, {*leaf_, *i2_, *i1_}).ok());
}

TEST_F(PathBuilderFixture, InputListCapRejectsBeforeDedup) {
  BuildPolicy policy;
  policy.max_input_list = 4;
  // 5 entries, but only 3 distinct: the GnuTLS-style cap still fires.
  const BuildResult result =
      build(policy, {*leaf_, *i2_, *i2_, *i2_, *i1_});
  EXPECT_EQ(result.status, BuildStatus::kInputListTooLong);
}

TEST_F(PathBuilderFixture, ConstructedDepthCap) {
  BuildPolicy policy;
  policy.max_constructed_depth = 4;
  EXPECT_TRUE(build(policy, {*leaf_, *i2_, *i1_}).ok());  // path is 4 long

  policy.max_constructed_depth = 3;
  const BuildResult result = build(policy, {*leaf_, *i2_, *i1_});
  EXPECT_EQ(result.status, BuildStatus::kDepthExceeded);
}

TEST_F(PathBuilderFixture, RedundancyEliminationControlsDuplicates) {
  BuildPolicy policy;
  const BuildResult with = build(policy, {*leaf_, *i2_, *i2_, *i2_, *i1_});
  EXPECT_TRUE(with.ok());

  policy.eliminate_redundancy = false;
  const BuildResult without = build(policy, {*leaf_, *i2_, *i2_, *i2_, *i1_});
  EXPECT_TRUE(without.ok());
  // Keeping duplicates costs extra candidate work.
  EXPECT_GT(without.stats.candidates_considered,
            with.stats.candidates_considered);
}

TEST_F(PathBuilderFixture, SelfSignedLeafPolicy) {
  const crypto::RsaKeyPair& keys =
      crypto::KeyPool::instance().for_name("pb-ss");
  CertificateBuilder builder;
  builder.as_leaf("ss-pb.example").public_key(keys.pub);
  const CertPtr ss = builder.self_sign(keys);

  BuildPolicy reject;
  EXPECT_EQ(build(reject, {ss}, "ss-pb.example").status,
            BuildStatus::kSelfSignedLeaf);

  BuildPolicy allow;
  allow.allow_self_signed_leaf = true;
  EXPECT_EQ(build(allow, {ss}, "ss-pb.example").status,
            BuildStatus::kUntrustedRoot);

  store_.add(ss);  // now trusted
  EXPECT_TRUE(build(allow, {ss}, "ss-pb.example").ok());
}

TEST_F(PathBuilderFixture, AiaCompletionRecursive) {
  // Server sends only the leaf; both intermediates resolve via AIA.
  aia_.publish("http://pb/i1.crt", *i1_);
  CertificateBuilder i2b;
  i2b.subject(i2_id_->name)
      .as_ca()
      .public_key(i2_id_->keys.pub)
      .aia_ca_issuers("http://pb/i1.crt");
  const CertPtr i2_aia = i2b.sign(*i1_id_);
  aia_.publish("http://pb/i2.crt", i2_aia);

  CertificateBuilder lb;
  lb.as_leaf("aia-pb.example").aia_ca_issuers("http://pb/i2.crt");
  const CertPtr leaf = lb.sign(*i2_id_);

  BuildPolicy no_aia;
  EXPECT_EQ(build(no_aia, {leaf}, "aia-pb.example").status,
            BuildStatus::kNoIssuerFound);

  BuildPolicy with_aia;
  with_aia.aia_completion = true;
  const BuildResult result = build(with_aia, {leaf}, "aia-pb.example");
  ASSERT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_EQ(result.path.size(), 4u);
  EXPECT_EQ(result.stats.aia_fetches, 2);
}

TEST_F(PathBuilderFixture, IntermediateCacheCompletesLikeFirefox) {
  CertificateBuilder lb;
  lb.as_leaf("cache-pb.example");
  const CertPtr leaf = lb.sign(*i2_id_);

  BuildPolicy policy;
  policy.intermediate_cache = true;
  // Cold cache: unknown issuer.
  EXPECT_EQ(build(policy, {leaf}, "cache-pb.example").status,
            BuildStatus::kNoIssuerFound);

  // Browse a compliant chain first; the cache remembers intermediates.
  EXPECT_TRUE(build(policy, {*leaf_, *i2_, *i1_}).ok());
  EXPECT_EQ(cache_.size(), 2u);

  const BuildResult warm = build(policy, {leaf}, "cache-pb.example");
  ASSERT_TRUE(warm.ok()) << to_string(warm.status);
  EXPECT_GT(warm.stats.cache_hits, 0);
}

TEST_F(PathBuilderFixture, BacktrackingEscapesUntrustedRoot) {
  // A same-subject/key twin of I1 signed by an untrusted root, listed
  // before the path to the trusted root.
  SigningIdentity bad_root_id =
      make_identity(asn1::Name::make("PB Evil Root", "PB", "US"));
  CertificateBuilder bb;
  bb.subject(bad_root_id.name).as_ca().public_key(bad_root_id.keys.pub);
  const CertPtr bad_root = bb.self_sign(bad_root_id.keys);

  CertificateBuilder twin_builder;
  twin_builder.subject(i1_id_->name)
      .as_ca()
      .public_key(i1_id_->keys.pub)
      .validity(kNow - kYear / 10, kNow + kYear);  // more recent
  const CertPtr i1_bad = twin_builder.sign(bad_root_id);

  const std::vector<CertPtr> list = {*leaf_, *i2_, i1_bad, bad_root, *i1_};

  BuildPolicy with_backtracking;
  with_backtracking.validity_priority = ValidityPriority::kMostRecentThenLongest;
  const BuildResult good = build(with_backtracking, list);
  ASSERT_TRUE(good.ok()) << to_string(good.status);
  EXPECT_GT(good.stats.backtracks, 0);

  BuildPolicy no_backtracking = with_backtracking;
  no_backtracking.backtracking = false;
  const BuildResult stuck = build(no_backtracking, list);
  EXPECT_EQ(stuck.status, BuildStatus::kUntrustedRoot);
}

TEST_F(PathBuilderFixture, PartialValidationSkipsExpiredCandidates) {
  CertificateBuilder expired_builder;
  expired_builder.subject(i2_id_->name)
      .as_ca()
      .public_key(i2_id_->keys.pub)
      .validity(kNow - 3 * kYear, kNow - 2 * kYear);
  const CertPtr i2_expired = expired_builder.sign(*i1_id_);

  const std::vector<CertPtr> list = {*leaf_, i2_expired, *i2_, *i1_};

  // Without partial validation and without validity priority, the first
  // listed candidate (expired) wins and validation fails.
  BuildPolicy naive;
  naive.backtracking = false;
  const BuildResult bad = build(naive, list);
  EXPECT_EQ(bad.status, BuildStatus::kExpired);

  BuildPolicy partial = naive;
  partial.partial_validation = true;
  EXPECT_TRUE(build(partial, list).ok());
}

TEST_F(PathBuilderFixture, ExpiredLeafFailsValidation) {
  CertificateBuilder lb;
  lb.as_leaf("expired-pb.example").validity(kNow - 2 * kYear, kNow - kYear);
  const CertPtr expired_leaf = lb.sign(*i2_id_);
  const BuildResult result =
      build(BuildPolicy{}, {expired_leaf, *i2_, *i1_}, "expired-pb.example");
  EXPECT_EQ(result.status, BuildStatus::kExpired);
  EXPECT_FALSE(is_construction_failure(result.status));
}

TEST_F(PathBuilderFixture, PathLenViolationDetectedAtValidation) {
  // I1 twin constrained to pathLen 0 cannot sit above I2.
  CertificateBuilder cb;
  cb.subject(i1_id_->name)
      .as_ca(0)
      .public_key(i1_id_->keys.pub);
  const CertPtr i1_plen0 = cb.sign(*root_id_);

  BuildPolicy naive;  // no BC priority: walks into the violation
  naive.backtracking = false;
  const BuildResult result = build(naive, {*leaf_, *i2_, i1_plen0});
  EXPECT_EQ(result.status, BuildStatus::kPathLenViolated);

  BuildPolicy smart;
  smart.basic_constraints_priority = BasicConstraintsPriority::kCorrectFirst;
  const BuildResult fixed = build(smart, {*leaf_, *i2_, i1_plen0, *i1_});
  EXPECT_TRUE(fixed.ok());
}

TEST_F(PathBuilderFixture, NotACaDetectedAtValidation) {
  // A leaf-profiled cert with I2's subject+key: DN/KID/signature all
  // link, but BasicConstraints is absent.
  CertificateBuilder cb;
  cb.subject(i2_id_->name).public_key(i2_id_->keys.pub);
  const CertPtr fake_i2 = cb.sign(*i1_id_);
  BuildPolicy naive;
  naive.backtracking = false;
  const BuildResult result = build(naive, {*leaf_, fake_i2, *i1_});
  EXPECT_EQ(result.status, BuildStatus::kNotACa);
}

TEST_F(PathBuilderFixture, WorkBudgetStopsPathologicalGraphs) {
  BuildPolicy policy;
  policy.max_build_steps = 2;
  const BuildResult result = build(policy, {*leaf_, *i2_, *i1_});
  EXPECT_EQ(result.status, BuildStatus::kWorkBudgetExceeded);
}

TEST_F(PathBuilderFixture, StatusStringsAreStable) {
  EXPECT_STREQ(to_string(BuildStatus::kOk), "OK");
  EXPECT_STREQ(to_string(BuildStatus::kInputListTooLong),
               "input list too long");
  EXPECT_TRUE(is_construction_failure(BuildStatus::kNoIssuerFound));
  EXPECT_TRUE(is_construction_failure(BuildStatus::kUntrustedRoot));
  EXPECT_FALSE(is_construction_failure(BuildStatus::kOk));
  EXPECT_FALSE(is_construction_failure(BuildStatus::kExpired));
}

TEST_F(PathBuilderFixture, NameConstraintViolationDetected) {
  // A constrained twin of I2 that only permits good.example.
  x509::NameConstraints nc;
  nc.permitted_dns = {"good.example"};
  CertificateBuilder cb;
  cb.subject(i2_id_->name)
      .as_ca()
      .public_key(i2_id_->keys.pub)
      .name_constraints(nc);
  const CertPtr constrained = cb.sign(*i1_id_);

  CertificateBuilder inside_b;
  inside_b.as_leaf("ok.good.example");
  const CertPtr inside = inside_b.sign(*i2_id_);
  CertificateBuilder outside_b;
  outside_b.as_leaf("pb-evil.example");
  const CertPtr outside = outside_b.sign(*i2_id_);

  BuildPolicy policy;
  EXPECT_TRUE(build(policy, {inside, constrained, *i1_}, "ok.good.example").ok());
  EXPECT_EQ(build(policy, {outside, constrained, *i1_}, "pb-evil.example").status,
            BuildStatus::kNameConstraintViolation);

  // The check is a policy knob (clients could skip it).
  BuildPolicy lax;
  lax.check_name_constraints = false;
  EXPECT_TRUE(build(lax, {outside, constrained, *i1_}, "pb-evil.example").ok());
}

TEST_F(PathBuilderFixture, BadEkuRejectedOnLeaf) {
  CertificateBuilder lb;
  lb.as_leaf("eku-pb.example")
      .ext_key_usage(x509::ExtKeyUsage{{"1.3.6.1.5.5.7.3.2"}});  // clientAuth
  const CertPtr client_only = lb.sign(*i2_id_);

  BuildPolicy policy;
  EXPECT_EQ(build(policy, {client_only, *i2_, *i1_}, "eku-pb.example").status,
            BuildStatus::kBadEku);

  BuildPolicy lax;
  lax.check_extended_key_usage = false;
  EXPECT_TRUE(build(lax, {client_only, *i2_, *i1_}, "eku-pb.example").ok());

  // Absent EKU is fine (no constraint expressed).
  CertificateBuilder nb;
  nb.as_leaf("noeku-pb.example").ext_key_usage(std::nullopt);
  const CertPtr no_eku = nb.sign(*i2_id_);
  EXPECT_TRUE(build(policy, {no_eku, *i2_, *i1_}, "noeku-pb.example").ok());
}

// ---------------------------------------------------------------------------
// IntermediateCache unit behaviour
// ---------------------------------------------------------------------------

TEST_F(PathBuilderFixture, CacheOnlyRetainsIntermediates) {
  IntermediateCache cache;
  cache.remember(*leaf_);   // not a CA: ignored
  cache.remember(*root_);   // self-signed: ignored
  cache.remember(*i1_);
  cache.remember(*i1_);     // deduplicated
  cache.remember(nullptr);  // tolerated
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find_by_subject((*i1_)->subject).size(), 1u);
  EXPECT_TRUE(cache.find_by_subject((*leaf_)->subject).empty());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace chainchaos::pathbuild
