// Span exporters: chrome://tracing JSON and the aggregated per-stage
// profile table (what chainprof prints).
//
// Aggregation is ordering-independent by construction: spans are grouped
// by stage, the duration list is sorted, and quantiles are nearest-rank
// on the sorted values — so the same set of spans produces a
// byte-identical profile no matter how many threads produced them or in
// what order a collector observed them (tests/obs_test.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace chainchaos::obs {

/// Aggregate statistics for one stage over a span collection. Durations
/// are inclusive (a stage's children are counted inside it).
struct StageProfile {
  Stage stage = Stage::kCount;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Groups spans by stage (result ordered by descending total time, ties
/// by stage enum order). Quantiles are exact nearest-rank over the
/// sorted per-stage durations.
std::vector<StageProfile> aggregate_profile(
    const std::vector<SpanRecord>& spans);

/// Fixed-width table: stage, count, total ms, p50/p99 µs, % of wall.
/// `wall_ns * threads` is the denominator for the %-column so profiles
/// from parallel sweeps still sum sensibly (cpu-time share).
std::string profile_table(const std::vector<StageProfile>& profile,
                          std::uint64_t wall_ns, unsigned threads);

/// Chrome trace-event JSON (load via chrome://tracing or Perfetto).
/// Emits one complete ("ph":"X") event per span with microsecond
/// timestamps; nesting falls out of the ts/dur containment per tid.
/// `dropped` is surfaced as metadata so truncated traces are flagged.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              std::uint64_t dropped = 0);

}  // namespace chainchaos::obs
