#!/usr/bin/env bash
# Connection-scale smoke test for the event-driven chaind core
# (DESIGN.md §5.15).
#
# Phases:
#   1. idle soak       10k keep-alive connections held open at once;
#                      the daemon's peak connection gauge must reach
#                      >= 90% of the target and its RSS growth must stay
#                      under CHAINCHAOS_RSS_BUDGET_KB (default 400 MB).
#   2. loris immunity  64 slow-loris clients drip header bytes while
#                      well-behaved probes must stay under a 1 s latency
#                      budget.
#   3. loris eviction  16 slow-loris clients must be evicted by the read
#                      deadline (daemon counters prove it).
#   4. storm           300 connections cycling clean close / RST /
#                      non-HTTP garbage; the daemon must stay healthy.
#   5. admission       a --max-connections 64 daemon floods with 128
#                      idle connections; the surplus must be shed with
#                      503-and-close and counted in rejected_busy.
#
# The 10k target scales down automatically on hosts with a low fd hard
# limit; override with CHAINCHAOS_IDLE_CONNS.
#
# Usage: epoll_smoke.sh <chaind-binary> <chainq-binary> <chainflood-binary>
set -euo pipefail

CHAIND=${1:?usage: epoll_smoke.sh <chaind> <chainq> <chainflood>}
CHAINQ=${2:?usage: epoll_smoke.sh <chaind> <chainq> <chainflood>}
CHAINFLOOD=${3:?usage: epoll_smoke.sh <chaind> <chainq> <chainflood>}

WORKDIR=$(mktemp -d)
DAEMON_PID=""
trap 'rm -rf "$WORKDIR"; [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

# Both ends of the soak need one fd per connection: lift the soft limit
# to the hard cap, and scale the idle target to what the host allows.
HARD_LIMIT=$(ulimit -Hn)
[ "$HARD_LIMIT" = "unlimited" ] && HARD_LIMIT=1048576
ulimit -Sn "$HARD_LIMIT" 2>/dev/null || true
IDLE=${CHAINCHAOS_IDLE_CONNS:-10000}
HEADROOM=$((HARD_LIMIT - 512))
if [ "$HEADROOM" -lt "$IDLE" ]; then
  IDLE=$HEADROOM
  echo "scaling idle target to $IDLE (fd hard limit $HARD_LIMIT)"
fi
[ "$IDLE" -ge 64 ] || { echo "FAIL: fd limit too low for the soak"; exit 1; }
RSS_BUDGET_KB=${CHAINCHAOS_RSS_BUDGET_KB:-400000}

start_daemon() {  # start_daemon <logfile> [extra chaind flags...]
  local log=$1
  shift
  : >"$PORT_FILE.tmp"
  "$CHAIND" --port 0 --port-file "$PORT_FILE.tmp" --duration 300 \
      --timeout-ms 2000 --queue 256 "$@" >"$log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$PORT_FILE.tmp" ] && break
    sleep 0.1
  done
  [ -s "$PORT_FILE.tmp" ] || { echo "FAIL: chaind never wrote its port"; exit 1; }
  PORT=$(cat "$PORT_FILE.tmp")
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" || { echo "FAIL: chaind exited non-zero"; exit 1; }
  DAEMON_PID=""
}

stat_field() {  # stat_field <key> -> prints the integer value
  "$CHAINQ" --port "$PORT" stats | sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

PORT_FILE="$WORKDIR/port"
start_daemon "$WORKDIR/chaind.log" --idle-timeout-ms 60000
echo "chaind is up on 127.0.0.1:$PORT"
grep -q "backend=" "$WORKDIR/chaind.log" \
    || { echo "FAIL: no backend in the startup banner"; exit 1; }

RSS_BEFORE=$(awk '/VmRSS/{print $2}' "/proc/$DAEMON_PID/status")

echo "--- phase 1: ${IDLE}-connection idle soak"
"$CHAINFLOOD" --port "$PORT" --mode idle --connections "$IDLE" \
    --hold-ms 4000 --probes 4 --latency-budget-ms 2000 \
    || { echo "FAIL: idle soak"; exit 1; }
PEAK=$(stat_field peak)
[ -n "$PEAK" ] && [ "$PEAK" -ge $((IDLE * 90 / 100)) ] \
    || { echo "FAIL: peak connections $PEAK < 90% of $IDLE"; exit 1; }
RSS_AFTER=$(awk '/VmRSS/{print $2}' "/proc/$DAEMON_PID/status")
RSS_DELTA=$((RSS_AFTER - RSS_BEFORE))
echo "peak=$PEAK rss_delta=${RSS_DELTA}kB"
[ "$RSS_DELTA" -lt "$RSS_BUDGET_KB" ] \
    || { echo "FAIL: RSS grew ${RSS_DELTA}kB (budget ${RSS_BUDGET_KB}kB)"; exit 1; }

echo "--- phase 2: slow-loris immunity (64 clients)"
"$CHAINFLOOD" --port "$PORT" --mode slowloris --clients 64 \
    --hold-ms 3000 --probes 6 --latency-budget-ms 1000 --drip-interval-ms 25 \
    || { echo "FAIL: probes suffered under slow-loris load"; exit 1; }

echo "--- phase 3: slow-loris eviction (16 clients)"
"$CHAINFLOOD" --port "$PORT" --mode slowloris --clients 16 \
    --hold-ms 3500 --probes 3 --expect-evicted \
    || { echo "FAIL: slow-loris clients were not evicted"; exit 1; }
EVICTED=$(stat_field evicted_slow_read)
[ -n "$EVICTED" ] && [ "$EVICTED" -ge 1 ] \
    || { echo "FAIL: daemon counted no slow-read evictions"; exit 1; }

echo "--- phase 4: connection storm (300 connections)"
"$CHAINFLOOD" --port "$PORT" --mode storm --connections 300 \
    --hold-ms 500 --probes 2 \
    || { echo "FAIL: daemon unhealthy after the storm"; exit 1; }
"$CHAINQ" --port "$PORT" health >/dev/null

stop_daemon
grep -q "shutting down" "$WORKDIR/chaind.log" \
    || { echo "FAIL: no graceful shutdown banner"; exit 1; }

echo "--- phase 5: admission control (--max-connections 64, 128 dials)"
start_daemon "$WORKDIR/chaind-admission.log" --max-connections 64
"$CHAINFLOOD" --port "$PORT" --mode idle --connections 128 \
    --hold-ms 1000 --probes 0 --expect-shed \
    || { echo "FAIL: surplus connections were not shed"; exit 1; }
REJECTED=$(stat_field rejected_busy)
[ -n "$REJECTED" ] && [ "$REJECTED" -ge 1 ] \
    || { echo "FAIL: admission sheds not counted in rejected_busy"; exit 1; }
STATS=$("$CHAINQ" --port "$PORT" stats)
echo "$STATS" | grep -q '"accept_errors"' \
    || { echo "FAIL: stats missing accept_errors"; exit 1; }
echo "$STATS" | grep -q '"fd_exhausted"' \
    || { echo "FAIL: stats missing fd_exhausted"; exit 1; }
stop_daemon
grep -q "shutting down" "$WORKDIR/chaind-admission.log" \
    || { echo "FAIL: no graceful shutdown banner (admission daemon)"; exit 1; }

echo "epoll smoke OK"
