// Regenerates Table 7 (+§4.3 details): completeness of certificate
// chains (paper: 8.7% complete w/ root, 89.9% complete w/o root, 1.3%
// incomplete; of the incomplete, 72.2% miss one cert and 94.5% are
// AIA-repairable), measured on the sharded engine.
#include <cstdio>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

using namespace chainchaos;

int main() {
  const auto corpus = bench::make_corpus();

  chain::CompletenessOptions options;
  options.store = &corpus->stores().union_store;
  options.aia = &corpus->aia();
  const chain::ComplianceAnalyzer analyzer(options);

  engine::AnalysisRequest request;
  request.records = &corpus->records();
  request.analyzer = &analyzer;
  const engine::AnalysisResult result = engine::run(request);
  const engine::ComplianceTally& tally = result.tally.compliance;

  const std::uint64_t total = tally.total;
  const std::uint64_t incomplete = tally.incomplete;

  report::Table table("Table 7: Completeness of certificate chain");
  table.header({"Type", "measured", "paper"});
  table.row({"Complete Chain w/ Root",
             report::count_pct(tally.complete_with_root, total),
             "79,144 (8.7%)"});
  table.row({"Complete Chain w/o Root",
             report::count_pct(tally.complete_without_root, total),
             "815,105 (89.9%)"});
  table.row({"Incomplete Chain", report::count_pct(incomplete, total),
             "12,087 (1.3%)"});
  std::fputs(table.render().c_str(), stdout);

  report::Table detail("Incomplete-chain breakdown (§4.3)");
  detail.header({"Property", "measured", "paper"});
  detail.row({"missing exactly one certificate",
              report::count_pct(tally.missing_one, incomplete),
              "8,729 (72.2%)"});
  detail.row({"repairable via recursive AIA",
              report::count_pct(tally.aia_completed, incomplete),
              "11,419 (94.5%)"});
  detail.row({"AIA field missing",
              report::count_pct(tally.aia_no_field, incomplete),
              "579 (4.8%)"});
  detail.row({"AIA URI unreachable",
              report::count_pct(tally.aia_unreachable, incomplete),
              "88 (0.7%)"});
  detail.row({"AIA serves wrong issuer",
              report::count_pct(tally.aia_wrong_issuer, incomplete), "1"});
  std::printf("\n%s", detail.render().c_str());

  const net::FetchStats stats = corpus->aia().stats();
  std::printf("\nAIA traffic during analysis: %llu fetches, %llu failed, "
              "%llu KiB served, %.1f simulated seconds of HTTP latency\n",
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.misses + stats.unreachable),
              static_cast<unsigned long long>(stats.bytes_served / 1024),
              static_cast<double>(stats.simulated_latency_ms) / 1000.0);

  bench::print_paper_note(
      "Table 7",
      "omitting the root is the norm; missing intermediates affect ~1.3% "
      "and are mostly repairable via AIA");
  return 0;
}
