#include "obs/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"

namespace chainchaos::obs {

const char* to_string(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    case EventLevel::kError: return "error";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void copy_truncated(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = src.size() < dst_size - 1 ? src.size() : dst_size - 1;
  if (n != 0) std::memcpy(dst, src.data(), n);  // empty views may have no data()
  dst[n] = '\0';
}

}  // namespace

EventLog::EventLog() { set_capacity(4096); }

EventLog& EventLog::instance() {
  static EventLog* log = new EventLog();  // leaked: outlives exiting threads
  return *log;
}

void EventLog::set_capacity(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  // The old slot array is never freed: an emitter that loaded the
  // pointer before the resize may still be writing into it, and the
  // flight recorder must never dereference freed memory. Retired arrays
  // are parked (not dropped) so the memory stays reachable — resizes are
  // rare (startup, test setup), so the parking lot stays bounded.
  if (slots_ != nullptr) retired_.push_back(slots_);
  slots_ = new Slot[cap];
  capacity_ = cap;
  mask_ = cap - 1;
  cursor_.store(0, std::memory_order_relaxed);
}

void EventLog::emit(EventLevel level, std::string_view kind,
                    std::string_view detail, std::uint64_t value,
                    std::uint64_t conn_id, std::uint64_t trace_id) {
  if (!enabled()) return;
  const std::uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Zero the commit word first: readers that catch the slot mid-rewrite
  // see commit != seq + 1 on either side of their copy and skip it.
  slot.commit.store(0, std::memory_order_release);
  EventRecord& r = slot.record;
  r.seq = seq;
  r.t_ns = Tracer::now_ns();
  r.conn_id = conn_id;
  r.trace_id = trace_id;
  r.value = value;
  r.level = level;
  copy_truncated(r.kind, sizeof r.kind, kind);
  copy_truncated(r.detail, sizeof r.detail, detail);
  slot.commit.store(seq + 1, std::memory_order_release);

  if (sink_open_.load(std::memory_order_relaxed)) sink_write(r);
}

bool EventLog::open_sink(const std::string& path,
                         std::uint64_t max_lines_per_sec) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_fd_ >= 0) ::close(sink_fd_);
  sink_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  sink_limit_ = max_lines_per_sec == 0 ? 1 : max_lines_per_sec;
  window_start_s_ = 0;
  window_count_ = 0;
  sink_open_.store(sink_fd_ >= 0, std::memory_order_relaxed);
  return sink_fd_ >= 0;
}

void EventLog::close_sink() {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_open_.store(false, std::memory_order_relaxed);
  if (sink_fd_ >= 0) ::close(sink_fd_);
  sink_fd_ = -1;
}

void EventLog::sink_write(const EventRecord& record) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_fd_ < 0) return;  // closed between the check and the lock
  const std::uint64_t second = record.t_ns / 1000000000ULL;
  if (second != window_start_s_) {
    window_start_s_ = second;
    window_count_ = 0;
  }
  if (window_count_ >= sink_limit_) {
    sink_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++window_count_;
  std::string line = to_jsonl(record);
  line.push_back('\n');
  ssize_t off = 0;
  while (off < static_cast<ssize_t>(line.size())) {
    const ssize_t n =
        ::write(sink_fd_, line.data() + off, line.size() - off);
    if (n <= 0) return;  // sink error: drop the tail, keep the ring
    off += n;
  }
  sink_written_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<EventRecord> EventLog::collect(std::size_t max) const {
  std::vector<EventRecord> out;
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  std::uint64_t window = max < capacity_ ? max : capacity_;
  const std::uint64_t begin = end > window ? end - window : 0;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    EventRecord copy = slot.record;
    // Re-check after the copy: a lapping writer that rewrote the slot
    // mid-copy zeroed (or advanced) the commit word, so the copy is torn.
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(copy);
  }
  return out;
}

void EventLog::reset() {
  close_sink();
  enabled_.store(false, std::memory_order_relaxed);
  set_capacity(capacity_);
  sink_written_.store(0, std::memory_order_relaxed);
  sink_suppressed_.store(0, std::memory_order_relaxed);
}

std::string to_jsonl(const EventRecord& record) {
  report::JsonWriter w;
  w.begin_object();
  w.key("seq");
  w.value(record.seq);
  w.key("t_ns");
  w.value(record.t_ns);
  w.key("level");
  w.value(to_string(record.level));
  w.key("kind");
  w.value(record.kind);
  if (record.conn_id != 0) {
    w.key("conn");
    w.value(record.conn_id);
  }
  if (record.trace_id != 0) {
    w.key("trace");
    w.value(record.trace_id);
  }
  if (record.value != 0) {
    w.key("value");
    w.value(record.value);
  }
  if (record.detail[0] != '\0') {
    w.key("detail");
    w.value(record.detail);
  }
  w.end_object();
  return w.take();
}

std::string render_event_metrics() {
  const EventLog& log = EventLog::instance();
  PromWriter w;
  w.family("chainchaos_events_emitted_total",
           "Structured events recorded in the chainwatch ring", "counter");
  w.sample("chainchaos_events_emitted_total", {}, log.emitted());
  w.family("chainchaos_events_sink_written_total",
           "Events written to the JSONL sink", "counter");
  w.sample("chainchaos_events_sink_written_total", {}, log.sink_written());
  w.family("chainchaos_events_sink_suppressed_total",
           "Sink lines suppressed by the per-second rate limiter", "counter");
  w.sample("chainchaos_events_sink_suppressed_total", {},
           log.sink_suppressed());
  return w.take();
}

}  // namespace chainchaos::obs
