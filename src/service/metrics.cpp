#include "service/metrics.hpp"

#include "obs/histogram.hpp"
#include "obs/prometheus.hpp"
#include "report/json.hpp"

namespace chainchaos::service {

namespace {

/// Snapshot of one µs-bucketed histogram (counts + quantiles), shared by
/// the JSON and Prometheus renderers.
struct LatencySnapshot {
  std::array<std::uint64_t, kLatencyBucketCount> counts{};
  std::uint64_t total_us = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

LatencySnapshot snapshot_histogram(
    const std::array<std::atomic<std::uint64_t>, kLatencyBucketCount>& cells,
    const std::atomic<std::uint64_t>& total_us) {
  LatencySnapshot snap;
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    snap.counts[i] = cells[i].load(std::memory_order_relaxed);
  }
  snap.total_us = total_us.load(std::memory_order_relaxed);
  snap.p50 = obs::quantile_from_buckets(snap.counts.data(), kLatencyBucketCount,
                                        kLatencyBucketUpperUs.data(), 0.50);
  snap.p90 = obs::quantile_from_buckets(snap.counts.data(), kLatencyBucketCount,
                                        kLatencyBucketUpperUs.data(), 0.90);
  snap.p99 = obs::quantile_from_buckets(snap.counts.data(), kLatencyBucketCount,
                                        kLatencyBucketUpperUs.data(), 0.99);
  return snap;
}

void write_histogram_json(report::JsonWriter& w, const LatencySnapshot& snap) {
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
    w.begin_object();
    if (i < kLatencyBucketUpperUs.size()) {
      w.key("le").value(kLatencyBucketUpperUs[i]);
    } else {
      w.key("le").value("inf");
    }
    w.key("count").value(snap.counts[i]);
    w.end_object();
  }
  w.end_array();
  w.key("total_us").value(snap.total_us);
  w.key("p50_us").value(snap.p50);
  w.key("p90_us").value(snap.p90);
  w.key("p99_us").value(snap.p99);
}

}  // namespace

const char* to_string(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kAnalyze: return "analyze";
    case Endpoint::kLint: return "lint";
    case Endpoint::kStats: return "stats";
    case Endpoint::kHealth: return "health";
    case Endpoint::kMetrics: return "metrics";
    case Endpoint::kTrace: return "trace";
    case Endpoint::kParsdiff: return "parsdiff";
    case Endpoint::kOther: return "other";
  }
  return "other";
}

const char* to_string(Eviction kind) {
  switch (kind) {
    case Eviction::kSlowRead: return "slow_read";
    case Eviction::kSlowWrite: return "slow_write";
    case Eviction::kIdle: return "idle";
  }
  return "idle";
}

void Metrics::record_request(Endpoint endpoint) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  by_endpoint_[static_cast<std::size_t>(endpoint)].fetch_add(
      1, std::memory_order_relaxed);
}

void Metrics::record_response(int status, std::uint64_t micros) {
  if (status >= 500) {
    responses_5xx_.fetch_add(1, std::memory_order_relaxed);
  } else if (status >= 400) {
    responses_4xx_.fetch_add(1, std::memory_order_relaxed);
  } else {
    responses_2xx_.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t bucket = kLatencyBucketUpperUs.size();
  for (std::size_t i = 0; i < kLatencyBucketUpperUs.size(); ++i) {
    if (micros <= kLatencyBucketUpperUs[i]) {
      bucket = i;
      break;
    }
  }
  latency_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_total_us_.fetch_add(micros, std::memory_order_relaxed);
}

void Metrics::record_queue_wait(std::uint64_t micros) {
  std::size_t bucket = kLatencyBucketUpperUs.size();
  for (std::size_t i = 0; i < kLatencyBucketUpperUs.size(); ++i) {
    if (micros <= kLatencyBucketUpperUs[i]) {
      bucket = i;
      break;
    }
  }
  queue_wait_[bucket].fetch_add(1, std::memory_order_relaxed);
  queue_wait_total_us_.fetch_add(micros, std::memory_order_relaxed);
}

void Metrics::record_rejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_client_disconnect() {
  client_disconnects_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_write_failure() {
  write_failures_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_worker_recovery() {
  worker_recoveries_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::note_queue_depth(std::size_t depth) {
  std::uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void Metrics::record_accept_error() {
  accept_errors_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_fd_exhausted() {
  fd_exhausted_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_connection_open() {
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t open =
      connections_open_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t seen = connections_peak_.load(std::memory_order_relaxed);
  while (open > seen && !connections_peak_.compare_exchange_weak(
                            seen, open, std::memory_order_relaxed)) {
  }
}

void Metrics::record_connection_close() {
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

void Metrics::record_eviction(Eviction kind) {
  evictions_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
}

std::string Metrics::to_json(const CacheStats& cache,
                             const net::FetchStats& aia,
                             const crypto::VerifySnapshot& verify) const {
  report::JsonWriter w;
  w.begin_object();

  w.key("requests").begin_object();
  w.key("total").value(requests_total());
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    w.key(to_string(static_cast<Endpoint>(i)))
        .value(by_endpoint_[i].load(std::memory_order_relaxed));
  }
  w.end_object();

  w.key("responses").begin_object();
  w.key("2xx").value(responses_2xx_.load(std::memory_order_relaxed));
  w.key("4xx").value(responses_4xx_.load(std::memory_order_relaxed));
  w.key("5xx").value(responses_5xx_.load(std::memory_order_relaxed));
  w.key("rejected_busy").value(rejected_.load(std::memory_order_relaxed));
  w.end_object();

  w.key("latency_us").begin_object();
  write_histogram_json(w, snapshot_histogram(latency_, latency_total_us_));
  w.end_object();

  w.key("queue_wait_us").begin_object();
  write_histogram_json(w,
                       snapshot_histogram(queue_wait_, queue_wait_total_us_));
  w.end_object();

  w.key("queue").begin_object();
  w.key("high_water_mark").value(queue_high_water());
  w.end_object();

  w.key("connections").begin_object();
  w.key("disconnects_midrequest")
      .value(client_disconnects_.load(std::memory_order_relaxed));
  w.key("write_failures")
      .value(write_failures_.load(std::memory_order_relaxed));
  w.key("worker_recoveries")
      .value(worker_recoveries_.load(std::memory_order_relaxed));
  w.key("open").value(connections_open());
  w.key("peak").value(connections_peak());
  w.key("accepted").value(connections_accepted());
  w.key("accept_errors").value(accept_errors());
  w.key("fd_exhausted").value(fd_exhausted());
  w.key("evicted_slow_read").value(evictions(Eviction::kSlowRead));
  w.key("evicted_slow_write").value(evictions(Eviction::kSlowWrite));
  w.key("evicted_idle").value(evictions(Eviction::kIdle));
  w.end_object();

  w.key("aia").begin_object();
  w.key("attempts").value(aia.attempts);
  w.key("hits").value(aia.hits);
  w.key("misses").value(aia.misses);
  w.key("unreachable").value(aia.unreachable);
  w.key("retries").value(aia.retries);
  w.key("transient_failures").value(aia.transient_failures);
  w.key("deadline_exceeded").value(aia.deadline_exceeded);
  w.key("corrupt_responses").value(aia.corrupt_responses);
  w.key("bytes_served").value(aia.bytes_served);
  w.key("simulated_latency_ms").value(aia.simulated_latency_ms);
  w.end_object();

  w.key("cache").begin_object();
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("evictions").value(cache.evictions);
  w.key("insertions").value(cache.insertions);
  w.key("entries").value(cache.entries);
  w.key("hit_ratio").value(cache.hit_ratio());
  w.end_object();

  w.key("verify").begin_object();
  w.key("memo_lookups").value(verify.memo.lookups);
  w.key("memo_hits").value(verify.memo.hits);
  w.key("memo_misses").value(verify.memo.misses);
  w.key("memo_insertions").value(verify.memo.insertions);
  w.key("memo_evictions").value(verify.memo.evictions);
  w.key("memo_entries").value(verify.memo.entries);
  w.key("memo_hit_ratio").value(verify.memo.hit_ratio());
  w.key("verifications").value(verify.computation.verifications);
  w.key("montgomery").value(verify.computation.montgomery);
  w.key("classic").value(verify.computation.classic);
  w.end_object();

  w.end_object();
  return w.take();
}

std::string Metrics::to_prometheus(const CacheStats& cache,
                                   const net::FetchStats& aia,
                                   const crypto::VerifySnapshot& verify) const {
  obs::PromWriter w;

  w.family("chainchaos_requests_total", "Requests received by endpoint",
           "counter");
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    w.sample("chainchaos_requests_total",
             {{"endpoint", to_string(static_cast<Endpoint>(i))}},
             by_endpoint_[i].load(std::memory_order_relaxed));
  }

  w.family("chainchaos_responses_total", "Responses sent by status class",
           "counter");
  w.sample("chainchaos_responses_total", {{"class", "2xx"}},
           responses_2xx_.load(std::memory_order_relaxed));
  w.sample("chainchaos_responses_total", {{"class", "4xx"}},
           responses_4xx_.load(std::memory_order_relaxed));
  w.sample("chainchaos_responses_total", {{"class", "5xx"}},
           responses_5xx_.load(std::memory_order_relaxed));

  w.family("chainchaos_rejected_total",
           "Connections answered 503 because the queue was full", "counter");
  w.sample("chainchaos_rejected_total", {}, rejected_total());

  w.family("chainchaos_client_disconnects_total",
           "Mid-request client disconnects", "counter");
  w.sample("chainchaos_client_disconnects_total", {}, client_disconnects());

  w.family("chainchaos_write_failures_total",
           "Responses lost to write errors or deadlines", "counter");
  w.sample("chainchaos_write_failures_total", {}, write_failures());

  w.family("chainchaos_worker_recoveries_total",
           "Worker threads that absorbed an unexpected handler error",
           "counter");
  w.sample("chainchaos_worker_recoveries_total", {}, worker_recoveries());

  w.family("chainchaos_queue_high_water", "Request queue depth high-water mark",
           "gauge");
  w.sample("chainchaos_queue_high_water", {}, queue_high_water());

  w.family("chainchaos_connections_open", "Connections currently admitted",
           "gauge");
  w.sample("chainchaos_connections_open", {}, connections_open());

  w.family("chainchaos_connections_peak",
           "High-water mark of concurrently open connections", "gauge");
  w.sample("chainchaos_connections_peak", {}, connections_peak());

  w.family("chainchaos_connections_accepted_total",
           "Connections admitted into the event loop", "counter");
  w.sample("chainchaos_connections_accepted_total", {},
           connections_accepted());

  w.family("chainchaos_accept_errors_total",
           "accept() failures other than EAGAIN/EINTR", "counter");
  w.sample("chainchaos_accept_errors_total", {}, accept_errors());

  w.family("chainchaos_fd_exhausted_total",
           "accept() EMFILE/ENFILE events absorbed by the reserved fd",
           "counter");
  w.sample("chainchaos_fd_exhausted_total", {}, fd_exhausted());

  w.family("chainchaos_evictions_total",
           "Connections closed by the event loop for missing a deadline",
           "counter");
  w.sample("chainchaos_evictions_total", {{"kind", "slow_read"}},
           evictions(Eviction::kSlowRead));
  w.sample("chainchaos_evictions_total", {{"kind", "slow_write"}},
           evictions(Eviction::kSlowWrite));
  w.sample("chainchaos_evictions_total", {{"kind", "idle"}},
           evictions(Eviction::kIdle));

  const LatencySnapshot latency =
      snapshot_histogram(latency_, latency_total_us_);
  w.histogram("chainchaos_request_duration_seconds",
              "Handler time per response (parse to send)", {},
              latency.counts.data(), kLatencyBucketCount,
              kLatencyBucketUpperUs.data(), 1e6, latency.total_us);

  const LatencySnapshot queue_wait =
      snapshot_histogram(queue_wait_, queue_wait_total_us_);
  w.histogram("chainchaos_queue_wait_seconds",
              "Time connections sat in the accept queue", {},
              queue_wait.counts.data(), kLatencyBucketCount,
              kLatencyBucketUpperUs.data(), 1e6, queue_wait.total_us);

  w.family("chainchaos_cache_operations_total",
           "Result cache lookups and mutations", "counter");
  w.sample("chainchaos_cache_operations_total", {{"op", "hit"}}, cache.hits);
  w.sample("chainchaos_cache_operations_total", {{"op", "miss"}},
           cache.misses);
  w.sample("chainchaos_cache_operations_total", {{"op", "eviction"}},
           cache.evictions);
  w.sample("chainchaos_cache_operations_total", {{"op", "insertion"}},
           cache.insertions);

  w.family("chainchaos_cache_entries", "Result cache resident entries",
           "gauge");
  w.sample("chainchaos_cache_entries", {}, cache.entries);

  w.family("chainchaos_aia_fetches_total", "AIA fetch outcomes", "counter");
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "hit"}}, aia.hits);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "miss"}}, aia.misses);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "unreachable"}},
           aia.unreachable);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "transient"}},
           aia.transient_failures);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "deadline"}},
           aia.deadline_exceeded);
  w.sample("chainchaos_aia_fetches_total", {{"outcome", "corrupt"}},
           aia.corrupt_responses);

  w.family("chainchaos_aia_retries_total", "AIA fetch retry attempts",
           "counter");
  w.sample("chainchaos_aia_retries_total", {}, aia.retries);

  w.family("chainchaos_verify_memo_total",
           "Signature verification memo lookups by result", "counter");
  w.sample("chainchaos_verify_memo_total", {{"result", "hit"}},
           verify.memo.hits);
  w.sample("chainchaos_verify_memo_total", {{"result", "miss"}},
           verify.memo.misses);

  w.family("chainchaos_verify_memo_entries",
           "Signature verification memo resident entries", "gauge");
  w.sample("chainchaos_verify_memo_entries", {}, verify.memo.entries);

  w.family("chainchaos_verify_memo_evictions_total",
           "Memo shard clears forced by the residency bound", "counter");
  w.sample("chainchaos_verify_memo_evictions_total", {},
           verify.memo.evictions);

  w.family("chainchaos_signature_verifications_total",
           "Signature verifications actually computed, by modexp path",
           "counter");
  w.sample("chainchaos_signature_verifications_total",
           {{"path", "montgomery"}}, verify.computation.montgomery);
  w.sample("chainchaos_signature_verifications_total", {{"path", "classic"}},
           verify.computation.classic);

  return w.take();
}

}  // namespace chainchaos::service
