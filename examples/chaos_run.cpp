// chaos_run: drive a chaos campaign from the command line.
//
// Derives --count adversarial inputs (seeded, deterministic) from the
// mutation engine and pushes each through the full pipeline, printing
// the campaign summary. The output is a pure function of the flags —
// no timestamps, no thread-order effects — so two invocations with the
// same flags must produce byte-identical stdout; scripts/chaos_smoke.sh
// diffs exactly that.
//
//   chaos_run --seed 833 --count 260 --threads 8
//   chaos_run --mutations B1,B3,S7 --count 60
//   chaos_run --through-daemon --count 120           # in-process chaind
//   chaos_run --through-daemon --port 8443 ...       # external chaind
//   chaos_run --aia-transient 2 --count 130          # flaky AIA web
//   chaos_run --through-daemon --socket-faults ...   # + transport faults
//                                                      (slow-loris, stalls,
//                                                      never-readers, storms)
//   chaos_run --flight crash.jsonl ...               # arm the flight
//                                                      recorder: findings
//                                                      land in the event
//                                                      ring, crashes dump it
//
// Exit status: 0 when the crash-free contract held (no crash, no hang,
// no unanswered daemon request), 1 otherwise — so CI can gate on it.
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "cli_common.hpp"
#include "obs/event_log.hpp"
#include "obs/flight.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace chainchaos;

  chaos::CampaignOptions options;
  std::string mutations;
  std::uint16_t port = 0;
  bool list = false;
  bool report = false;
  const char* flight_path = nullptr;

  cli::Flags flags;
  flags.add("--seed", &options.seed, "N");
  flags.add("--count", &options.count, "N");
  flags.add("--threads", &options.threads, "N");
  flags.add("--domains", &options.corpus_domains, "N");
  flags.add("--mutations", &mutations, "IDS");
  flags.add("--deadline-ms", &options.per_input_deadline_ms, "MS");
  flags.add("--aia-transient", &options.aia_transient_failures, "N");
  flags.add("--aia-permanent", &options.aia_permanent_failures);
  flags.add("--aia-retries", &options.aia_max_retries, "N");
  flags.add("--through-daemon", &options.through_daemon);
  flags.add("--port", &port, "PORT");
  flags.add("--socket-faults", &options.socket_faults);
  flags.add("--socket-clients", &options.socket_fault_clients, "N");
  flags.add("--storm", &options.socket_fault_storm, "N");
  flags.add("--list", &list);
  flags.add("--report", &report);
  flags.add("--flight", &flight_path, "FILE");
  if (!flags.parse(argc, argv)) return 1;

  // --flight FILE arms the crash flight recorder: event recording comes
  // on (chaos.finding events land in the ring), and if the campaign
  // takes the process down the newest events + spans are dumped to FILE
  // before it dies. stdout stays byte-identical — events never print.
  if (flight_path != nullptr) {
    if (!chainchaos::obs::flight::set_dump_path(flight_path)) {
      std::fprintf(stderr, "chaos_run: bad flight path %s\n", flight_path);
      return 1;
    }
    chainchaos::obs::EventLog::instance().set_enabled(true);
    chainchaos::obs::flight::install_signal_handlers();
  }
  options.daemon_port = port;
  if (options.socket_faults && !options.through_daemon) {
    std::fprintf(stderr,
                 "chaos_run: --socket-faults requires --through-daemon "
                 "(the faults attack a live socket)\n");
    return 1;
  }

  if (list) {
    for (const chaos::MutationSpec& spec : chaos::all_mutations()) {
      std::printf("%-3s %-16s %s\n", spec.id, spec.name, spec.paper_row);
    }
    return 0;
  }

  // --mutations B1,bit-flip,S7 — IDs and names mix freely.
  if (!mutations.empty()) {
    for (const std::string& token : split(mutations, ',')) {
      auto cls = chaos::mutation_from_name(token);
      if (!cls.ok()) {
        std::fprintf(stderr, "chaos_run: unknown mutation '%s' (--list)\n",
                     token.c_str());
        return 1;
      }
      options.classes.push_back(cls.value());
    }
  }

  std::printf("chaos_run: seed=%llu count=%zu classes=%zu threads=%u%s\n",
              static_cast<unsigned long long>(options.seed), options.count,
              options.classes.empty() ? chaos::kMutationClassCount
                                      : options.classes.size(),
              options.threads == 0 ? 0u : options.threads,
              options.through_daemon ? " through-daemon" : "");

  chaos::Campaign campaign(options);
  const chaos::CampaignSummary summary = campaign.run();
  std::fputs(summary.to_string().c_str(), stdout);

  if (report) {
    // Timing is run-dependent by nature, so the table only appears on
    // request — default stdout stays byte-identical across runs.
    std::printf("\nslowest mutation classes:\n%s",
                summary.timing_report().c_str());
  }

  return summary.contract_ok() ? 0 : 1;
}
