// lint_corpus: corpus-wide chainlint sweep on the sharded engine.
//
// Generates (or imports) a corpus, runs every registered lint rule over
// every chain — certificate-level DER/RFC 5280 checks plus the paper's
// Tables 3/5/7 chain taxonomy — and prints per-rule tallies as a text
// table or JSON. Results are byte-identical for any --threads value.
//
// Usage:  lint_corpus [--domains N] [--seed S] [--threads T] [--now UNIX]
//                     [--json] [--import corpus.pem] [--corpus corpus.chc]
//
// --corpus streams a packed binary corpus (corpus_pack) via mmap
// instead of generating; the summary is byte-identical to linting the
// generated corpus in RAM.
#include <cstdio>

#include "cli_common.hpp"
#include "corpusio/source.hpp"
#include "dataset/serialize.hpp"
#include "lint/sweep.hpp"

using namespace chainchaos;

namespace {

// Default reference time for the expiry rules: fixed (not wall clock) so
// sweeps are reproducible run-to-run. 2027-01-15, inside the builder's
// default validity window.
constexpr std::int64_t kDefaultNow = 1800000000;

int run_sweep(const std::vector<dataset::DomainRecord>* records,
              const engine::RecordSource* source,
              const chain::ComplianceAnalyzer& analyzer, unsigned threads,
              std::int64_t now, bool json) {
  lint::CorpusLintRequest request;
  request.records = records;
  request.source = source;
  request.shards.threads = threads;
  request.analyzer = &analyzer;
  request.options.now = now;
  const lint::CorpusLintSummary summary = lint::lint_corpus(request);

  if (json) {
    std::printf("%s\n", lint::summary_json(summary).c_str());
  } else {
    std::fputs(lint::summary_table(summary).render().c_str(), stdout);
    std::printf("\nlinted %llu chains on %u threads in %.2fs\n",
                static_cast<unsigned long long>(summary.chains),
                summary.threads_used, summary.elapsed_seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t domains = 20000;
  std::uint64_t seed = 833;
  unsigned threads = 0;
  std::int64_t now = kDefaultNow;
  bool json = false;
  const char* import_path = nullptr;
  const char* corpus_path = nullptr;
  cli::Flags flags;
  flags.add("--domains", &domains, "N");
  flags.add("--seed", &seed, "S");
  flags.add("--threads", &threads, "T");
  flags.add("--now", &now, "UNIX");
  flags.add("--json", &json);
  flags.add("--import", &import_path, "FILE");
  flags.add("--corpus", &corpus_path, "FILE");
  if (!flags.parse(argc, argv)) return 1;

  if (corpus_path != nullptr) {
    auto packed = corpusio::PackedCorpus::open(corpus_path);
    if (!packed.ok()) {
      std::fprintf(stderr, "cannot open packed corpus: %s\n",
                   packed.error().to_string().c_str());
      return 1;
    }
    chain::CompletenessOptions options;
    options.store = &packed.value()->stores().union_store;
    options.aia = &packed.value()->aia();
    const chain::ComplianceAnalyzer analyzer(options);
    const corpusio::PackedRecordSource source(&packed.value()->reader());
    const int rc = run_sweep(nullptr, &source, analyzer, threads, now, json);
    if (source.decode_errors() != 0) {
      std::fprintf(stderr, "%llu records failed to decode\n",
                   static_cast<unsigned long long>(source.decode_errors()));
      return 1;
    }
    return rc;
  }

  if (import_path != nullptr) {
    auto imported = dataset::import_corpus_from_file(import_path);
    if (!imported.ok()) {
      std::fprintf(stderr, "import failed: %s\n",
                   imported.error().to_string().c_str());
      return 1;
    }
    truststore::RootStore store("imported");
    for (const auto& record : imported.value()) {
      for (const auto& cert : record.certificates) {
        if (cert->is_self_signed()) store.add(cert);
      }
    }
    chain::CompletenessOptions options;
    options.store = &store;
    options.aia_enabled = false;
    const chain::ComplianceAnalyzer analyzer(options);

    std::vector<dataset::DomainRecord> records;
    records.reserve(imported.value().size());
    for (auto& record : imported.value()) {
      dataset::DomainRecord wrapped;
      wrapped.observation.domain = record.domain;
      wrapped.observation.certificates = std::move(record.certificates);
      wrapped.observation.server_software = record.server_software;
      wrapped.observation.ca_name = record.ca_name;
      wrapped.root_included = record.root_included;
      wrapped.rare_hierarchy = record.rare_hierarchy;
      wrapped.akidless_terminal = record.akidless_terminal;
      wrapped.exclusive_store_domain = record.exclusive_store_domain;
      wrapped.missing_count = record.missing_count;
      records.push_back(std::move(wrapped));
    }
    return run_sweep(&records, nullptr, analyzer, threads, now, json);
  }

  dataset::CorpusConfig config;
  config.domain_count = domains;
  config.seed = seed;
  if (!json) {
    std::printf("generating %zu synthetic domains (seed %llu)...\n", domains,
                static_cast<unsigned long long>(seed));
  }
  dataset::Corpus corpus(std::move(config));

  chain::CompletenessOptions options;
  options.store = &corpus.stores().union_store;
  options.aia = &corpus.aia();
  const chain::ComplianceAnalyzer analyzer(options);
  return run_sweep(&corpus.records(), nullptr, analyzer, threads, now, json);
}
