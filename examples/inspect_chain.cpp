// inspect_chain: the library as a deployment-linting tool.
//
// Reads a PEM bundle (leaf first, as a server would send it) and prints
// the full compliance report the paper's server-side methodology
// produces: leaf placement, issuance-order taxonomy, topology graph, and
// completeness. Without arguments it inspects a built-in misconfigured
// demo chain.
//
// Usage:  inspect_chain [chain.pem [hostname]]
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "ca/hierarchy.hpp"
#include "chain/analyzer.hpp"
#include "dataset/defects.hpp"
#include "lint/lint.hpp"
#include "parsdiff/diff.hpp"
#include "parsdiff/profile.hpp"

using namespace chainchaos;

namespace {

std::vector<x509::CertPtr> demo_chain(std::string* hostname,
                                      truststore::RootStore* store) {
  // A deliberately messy deployment: duplicated leaf + reversed bundle.
  static const ca::CaHierarchy authority =
      ca::CaHierarchy::create("Inspect Demo CA", 2);
  store->add(authority.root());
  *hostname = "messy.example.com";
  const x509::CertPtr leaf = authority.issue_leaf(*hostname);
  std::vector<x509::CertPtr> chain = {leaf, leaf};  // duplicate leaf
  chain.push_back(authority.intermediates().front());  // reversed order
  chain.push_back(authority.intermediates().back());
  return chain;
}

}  // namespace

int main(int argc, char** argv) {
  std::string hostname = argc > 2 ? argv[2] : "";
  truststore::RootStore store("inspect");
  std::vector<x509::CertPtr> chain;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto parsed = x509::bundle_from_pem(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "PEM parse error: %s\n",
                   parsed.error().to_string().c_str());
      return 1;
    }
    chain = std::move(parsed).value();
    // Self-signed members double as candidate anchors for completeness.
    for (const x509::CertPtr& cert : chain) {
      if (cert->is_self_signed()) store.add(cert);
    }
  } else {
    chain = demo_chain(&hostname, &store);
    std::printf("(no PEM given; inspecting the built-in demo chain)\n\n");
  }

  if (hostname.empty() && !chain.empty()) {
    hostname = chain.front()->subject.common_name().value_or("");
  }

  std::printf("=== certificates as served ===\n");
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const x509::Certificate& cert = *chain[i];
    std::printf("[%zu] subject: %s\n     issuer:  %s\n     role: %s%s\n", i,
                cert.subject.to_string().c_str(),
                cert.issuer.to_string().c_str(),
                cert.is_self_signed()  ? "root (self-signed)"
                : cert.is_ca()         ? "intermediate CA"
                                       : "end-entity",
                cert.aia.has_value() && cert.aia->ca_issuers_uri.has_value()
                    ? "  [has AIA]"
                    : "");
  }

  const chain::Topology topo = chain::Topology::build(chain);
  std::printf("\n=== issuance topology ===\n%s", topo.to_ascii().c_str());

  net::AiaRepository aia;
  chain::CompletenessOptions options;
  options.store = &store;
  options.aia = &aia;
  const chain::ComplianceAnalyzer analyzer(options);

  chain::ChainObservation observation;
  observation.domain = hostname;
  observation.certificates = chain;
  const chain::ComplianceReport report = analyzer.analyze(observation, topo);

  std::printf("\n=== compliance report (host: %s) ===\n", hostname.c_str());
  std::printf("leaf placement:     %s\n", to_string(report.leaf_placement));
  std::printf("issuance order:     %s\n",
              report.order.compliant ? "compliant" : "NON-COMPLIANT");
  if (report.order.has_duplicates) {
    std::printf("  - duplicate certificates (max %d copies)%s%s%s\n",
                report.order.max_duplicate_occurrences,
                report.order.duplicate_leaf ? " [leaf]" : "",
                report.order.duplicate_intermediate ? " [intermediate]" : "",
                report.order.duplicate_root ? " [root]" : "");
  }
  if (report.order.has_irrelevant) {
    std::printf("  - %d irrelevant certificate(s)\n",
                report.order.irrelevant_count);
  }
  if (report.order.multiple_paths) {
    std::printf("  - multiple candidate paths (%d)\n", report.order.path_count);
  }
  if (report.order.reversed_sequence) {
    std::printf("  - reversed sequence%s\n",
                report.order.all_paths_reversed ? " (every path)" : "");
  }
  std::printf("completeness:       %s\n",
              to_string(report.completeness.category));
  if (!report.completeness.complete()) {
    std::printf("  - AIA repair: %s (%d certificate(s) missing)\n",
                to_string(report.completeness.aia_outcome),
                report.completeness.missing_certificates);
  }
  std::printf("overall:            %s\n",
              report.compliant() ? "COMPLIANT" : "NON-COMPLIANT");

  // Parser panel: the same DER under every leniency profile. Chains a
  // strict parser drops while a lax one serves them are deployment
  // hazards in their own right (DESIGN.md §5.13).
  {
    std::vector<BytesView> ders;
    ders.reserve(chain.size());
    for (const x509::CertPtr& cert : chain) ders.emplace_back(cert->der);
    const parsdiff::ChainDiff diff = parsdiff::diff_chain(ders);
    std::printf("\n=== parser profiles ===\n");
    const auto& panel = parsdiff::profiles();
    for (std::size_t p = 0; p < panel.size(); ++p) {
      const parsdiff::ProfileOutcome& outcome = diff.outcomes[p];
      std::printf("%-14s %-26s ", std::string(panel[p].name).c_str(),
                  std::string(panel[p].models).c_str());
      if (outcome.accepted) {
        std::printf("accept\n");
      } else {
        std::printf("REJECT [cert %zu] %s: %s\n", outcome.cert_index,
                    outcome.error_code.c_str(), outcome.error_detail.c_str());
      }
    }
    if (diff.discrepancy) {
      const lint::Rule* rule = parsdiff::find_pd_rule(diff.pd_class);
      std::printf("panel split: %s — %s\n",
                  std::string(diff.pd_class).c_str(),
                  rule != nullptr ? std::string(rule->description).c_str()
                                  : "");
    } else {
      std::printf("panel agrees (%s)\n",
                  diff.accept_count > 0 ? "all accept" : "all reject");
    }
  }

  // Per-chain chainlint findings: every rule the deployment trips, with
  // its severity and the RFC/paper citation it enforces.
  lint::LintOptions lint_options;
  lint_options.now = static_cast<std::int64_t>(std::time(nullptr));
  const lint::Linter linter(lint_options);
  const lint::LintReport lint_report = linter.lint(observation, report);
  std::printf("\n=== chainlint (%zu rules) ===\n", lint::all_rules().size());
  if (lint_report.clean()) {
    std::printf("no findings\n");
  } else {
    for (const lint::Finding& finding : lint_report.findings) {
      std::printf("%-6s %-28s", lint::to_string(finding.rule->severity),
                  std::string(finding.rule->id).c_str());
      if (finding.cert_index >= 0) {
        std::printf(" [cert %d]", finding.cert_index);
      }
      if (!finding.detail.empty()) {
        std::printf(" %s", finding.detail.c_str());
      }
      std::printf("\n       %s (%s)\n",
                  std::string(finding.rule->description).c_str(),
                  std::string(finding.rule->citation).c_str());
    }
  }
  return report.compliant() ? 0 : 2;
}
