#include <gtest/gtest.h>

#include "ca/ca_model.hpp"
#include "ca/hierarchy.hpp"
#include "chain/completeness.hpp"
#include "chain/issuance.hpp"
#include "chain/order_analysis.hpp"
#include "chain/topology.hpp"
#include "clients/profiles.hpp"
#include "httpserver/normalize.hpp"
#include "pathbuild/path_builder.hpp"
#include "httpserver/server_model.hpp"
#include "truststore/root_store.hpp"

namespace chainchaos {
namespace {

using httpserver::DeploymentInput;
using httpserver::DeploymentResult;
using httpserver::FileScheme;
using httpserver::HttpServerModel;
using httpserver::ServerSoftware;

class DeploymentFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hierarchy_ = new ca::CaHierarchy(
        ca::CaHierarchy::create("Deploy Test CA", 2, nullptr));
    leaf_ = new x509::CertPtr(hierarchy_->issue_leaf("deploy.example.com"));
    // The leaf's private key lives in the pool slot its subject hashes to.
    key_ = &crypto::KeyPool::instance().leaf_slot(
        (*leaf_)->subject.to_string());
  }

  static ca::CaHierarchy* hierarchy_;
  static x509::CertPtr* leaf_;
  static const crypto::RsaKeyPair* key_;
};

ca::CaHierarchy* DeploymentFixture::hierarchy_ = nullptr;
x509::CertPtr* DeploymentFixture::leaf_ = nullptr;
const crypto::RsaKeyPair* DeploymentFixture::key_ = nullptr;

// ---------------------------------------------------------------------------
// HTTP server models (Table 4)
// ---------------------------------------------------------------------------

TEST_F(DeploymentFixture, EveryServerChecksPrivateKeyMatch) {
  const crypto::RsaKeyPair& wrong_key =
      crypto::KeyPool::instance().for_name("deploy-wrong-key");
  for (const HttpServerModel& server : httpserver::all_server_models()) {
    DeploymentInput input;
    input.certificate_file = {*leaf_};
    input.private_key = &wrong_key.priv;
    const DeploymentResult result = server.deploy(input);
    EXPECT_FALSE(result.accepted) << to_string(server.software());
    EXPECT_NE(result.error.find("PrivateKey"), std::string::npos);
  }
}

TEST_F(DeploymentFixture, CompliantDeploymentAcceptedEverywhere) {
  for (const HttpServerModel& server : httpserver::all_server_models()) {
    DeploymentInput input;
    if (server.characteristics().scheme == FileScheme::kSeparateFiles) {
      input.certificate_file = {*leaf_};
      input.chain_file = hierarchy_->bundle_ascending();
    } else {
      input.certificate_file =
          hierarchy_->compliant_chain(*leaf_);
    }
    input.private_key = &key_->priv;
    const DeploymentResult result = server.deploy(input);
    EXPECT_TRUE(result.accepted) << to_string(server.software()) << ": "
                                 << result.error;
    EXPECT_TRUE(chain::order_compliant(result.served_chain))
        << to_string(server.software());
  }
}

TEST_F(DeploymentFixture, ApacheLegacyServesDuplicateLeafMistake) {
  // Admin copies the leaf into the ca-bundle: SF1 servers serve it twice.
  const HttpServerModel apache =
      HttpServerModel::make(ServerSoftware::kApacheLegacy);
  DeploymentInput input;
  input.certificate_file = {*leaf_};
  input.chain_file = {*leaf_};  // the mistake
  for (const auto& cert : hierarchy_->bundle_ascending()) {
    input.chain_file.push_back(cert);
  }
  input.private_key = &key_->priv;
  const DeploymentResult result = apache.deploy(input);
  ASSERT_TRUE(result.accepted);  // Apache does not check duplicates
  const chain::Topology topo = chain::Topology::build(result.served_chain);
  const chain::OrderAnalysis analysis =
      chain::analyze_order(result.served_chain, topo);
  EXPECT_TRUE(analysis.duplicate_leaf);
}

TEST_F(DeploymentFixture, AzureRejectsDuplicateLeaf) {
  const HttpServerModel azure =
      HttpServerModel::make(ServerSoftware::kAzureGateway);
  DeploymentInput input;
  input.certificate_file = {*leaf_, *leaf_};  // duplicated in the PFX
  input.private_key = &key_->priv;
  const DeploymentResult result = azure.deploy(input);
  EXPECT_FALSE(result.accepted);
  EXPECT_NE(result.error.find("leaf"), std::string::npos);

  // IIS behaves the same; Nginx serves it silently.
  EXPECT_FALSE(HttpServerModel::make(ServerSoftware::kIis)
                   .deploy(input)
                   .accepted);
  EXPECT_TRUE(HttpServerModel::make(ServerSoftware::kNginx)
                  .deploy(input)
                  .accepted);
}

TEST_F(DeploymentFixture, NoServerChecksDuplicateIntermediates) {
  for (const HttpServerModel& server : httpserver::all_server_models()) {
    EXPECT_FALSE(server.characteristics().checks_duplicate_intermediate)
        << to_string(server.software());
    DeploymentInput input;
    input.certificate_file = hierarchy_->compliant_chain(*leaf_);
    input.certificate_file.push_back(input.certificate_file[1]);  // dup int
    if (server.characteristics().scheme == FileScheme::kSeparateFiles) {
      input.certificate_file = {*leaf_};
      input.chain_file = hierarchy_->bundle_ascending();
      input.chain_file.push_back(input.chain_file[0]);
    }
    input.private_key = &key_->priv;
    EXPECT_TRUE(server.deploy(input).accepted) << to_string(server.software());
  }
}

TEST_F(DeploymentFixture, EmptyDeploymentRejected) {
  for (const HttpServerModel& server : httpserver::all_server_models()) {
    DeploymentInput input;
    input.private_key = &key_->priv;
    EXPECT_FALSE(server.deploy(input).accepted);
  }
}

TEST_F(DeploymentFixture, Table4CharacteristicsMatchPaper) {
  const auto traits = [](ServerSoftware s) {
    return HttpServerModel::make(s).characteristics();
  };
  EXPECT_EQ(traits(ServerSoftware::kApacheLegacy).scheme,
            FileScheme::kSeparateFiles);
  EXPECT_EQ(traits(ServerSoftware::kApache).scheme, FileScheme::kFullChain);
  EXPECT_EQ(traits(ServerSoftware::kNginx).scheme, FileScheme::kFullChain);
  EXPECT_EQ(traits(ServerSoftware::kAzureGateway).scheme, FileScheme::kPfx);
  EXPECT_EQ(traits(ServerSoftware::kIis).scheme, FileScheme::kPfx);
  EXPECT_EQ(traits(ServerSoftware::kAwsElb).scheme,
            FileScheme::kSeparateFiles);

  EXPECT_FALSE(traits(ServerSoftware::kIis).automatic_certificate_management);
  EXPECT_TRUE(traits(ServerSoftware::kNginx).automatic_certificate_management);
  EXPECT_TRUE(traits(ServerSoftware::kAzureGateway).checks_duplicate_leaf);
  EXPECT_FALSE(traits(ServerSoftware::kAwsElb).checks_duplicate_leaf);
}

// ---------------------------------------------------------------------------
// CA models (Table 6)
// ---------------------------------------------------------------------------

TEST(CaModelTest, Table6CharacteristicsMatchPaper) {
  using ca::CaKind;
  const auto traits = ca::characteristics_for;

  EXPECT_TRUE(traits(CaKind::kLetsEncrypt).automatic_certificate_management);
  EXPECT_TRUE(traits(CaKind::kLetsEncrypt).provides_fullchain_file);
  EXPECT_TRUE(traits(CaKind::kLetsEncrypt).bundle_in_compliant_order);

  for (CaKind reversed_kind : {CaKind::kGoGetSsl, CaKind::kCyberFolks,
                               CaKind::kTrustico}) {
    EXPECT_FALSE(traits(reversed_kind).bundle_in_compliant_order)
        << to_string(reversed_kind);
    EXPECT_FALSE(traits(reversed_kind).provides_fullchain_file);
    EXPECT_TRUE(traits(reversed_kind).provides_root_certificate);
  }
  EXPECT_TRUE(traits(CaKind::kTaiwanCa).omits_required_intermediate);
}

class CaModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hierarchy_ = new ca::CaHierarchy(
        ca::CaHierarchy::create("Model Test CA", 2, nullptr));
  }
  static ca::CaHierarchy* hierarchy_;
};

ca::CaHierarchy* CaModelFixture::hierarchy_ = nullptr;

TEST_F(CaModelFixture, FullchainCaYieldsCompliantNaiveDeployment) {
  const ca::CaModel le(ca::CaKind::kLetsEncrypt, hierarchy_);
  const ca::IssuedPackage package = le.issue("happy.example.com");
  ASSERT_FALSE(package.fullchain_file.empty());
  const auto deployed = le.naive_admin_deployment(package);
  EXPECT_TRUE(chain::order_compliant(deployed));
  EXPECT_TRUE(deployed.front()->matches_host("happy.example.com"));
}

TEST_F(CaModelFixture, ReversedBundleCaYieldsReversedDeployment) {
  const ca::CaModel gogetssl(ca::CaKind::kGoGetSsl, hierarchy_);
  const ca::IssuedPackage package = gogetssl.issue("sad.example.com");
  EXPECT_TRUE(package.fullchain_file.empty());
  ASSERT_FALSE(package.ca_bundle_file.empty());

  const auto deployed = gogetssl.naive_admin_deployment(package);
  EXPECT_FALSE(chain::order_compliant(deployed));
  const chain::Topology topo = chain::Topology::build(deployed);
  EXPECT_TRUE(topo.any_path_reversed());

  // A careful admin could fix it by reversing the bundle: the material
  // itself is complete.
  std::vector<x509::CertPtr> fixed = {package.leaf};
  for (auto it = package.ca_bundle_file.rbegin();
       it != package.ca_bundle_file.rend(); ++it) {
    fixed.push_back(*it);
  }
  EXPECT_TRUE(chain::order_compliant(fixed));
}

TEST_F(CaModelFixture, TaiwanCaOmitsIntermediate) {
  const ca::CaModel taiwan(ca::CaKind::kTaiwanCa, hierarchy_);
  const ca::IssuedPackage package = taiwan.issue("gov.example.tw");
  const auto deployed = taiwan.naive_admin_deployment(package);

  // The hole: the topmost intermediate is absent, so no issuance path
  // reaches the root.
  truststore::RootStore store("taiwan-test");
  store.add(hierarchy_->root());
  chain::CompletenessOptions options;
  options.store = &store;
  options.aia_enabled = false;
  const chain::Topology topo = chain::Topology::build(deployed);
  EXPECT_EQ(analyze_completeness(topo, options).category,
            chain::Completeness::kIncomplete);
}

TEST_F(CaModelFixture, PackagesCarryLeafFile) {
  for (ca::CaKind kind : {ca::CaKind::kLetsEncrypt, ca::CaKind::kSectigo,
                          ca::CaKind::kZeroSsl, ca::CaKind::kTrustico}) {
    const ca::CaModel model(kind, hierarchy_);
    const ca::IssuedPackage package = model.issue("any.example.com");
    ASSERT_EQ(package.certificate_file.size(), 1u) << to_string(kind);
    EXPECT_TRUE(
        equal(package.certificate_file[0]->der, package.leaf->der));
    EXPECT_EQ(package.ca_name, to_string(kind));
  }
}

// ---------------------------------------------------------------------------
// CaHierarchy invariants
// ---------------------------------------------------------------------------

TEST(CaHierarchyTest, ChainLinksVerify) {
  net::AiaRepository aia;
  const ca::CaHierarchy h = ca::CaHierarchy::create("Linkage CA", 3, &aia);
  ASSERT_EQ(h.intermediates().size(), 3u);
  EXPECT_TRUE(h.root()->is_self_signed());
  EXPECT_TRUE(h.intermediates()[0]->verify_signed_by(h.root()->public_key));
  EXPECT_TRUE(h.intermediates()[1]->verify_signed_by(
      h.intermediates()[0]->public_key));
  EXPECT_TRUE(h.intermediates()[2]->verify_signed_by(
      h.intermediates()[1]->public_key));

  const x509::CertPtr leaf = h.issue_leaf("linked.example.com");
  EXPECT_TRUE(leaf->verify_signed_by(h.intermediates()[2]->public_key));
  EXPECT_TRUE(chain::order_compliant(h.compliant_chain(leaf)));
}

TEST(CaHierarchyTest, AiaPublishingIsRecursive) {
  net::AiaRepository aia;
  const ca::CaHierarchy h = ca::CaHierarchy::create("AIA CA", 2, &aia);
  const x509::CertPtr leaf = h.issue_leaf("aia.example.com");

  // Leaf AIA -> issuing intermediate -> upper intermediate -> root.
  ASSERT_TRUE(leaf->aia.has_value());
  auto issuing = aia.fetch(*leaf->aia->ca_issuers_uri);
  ASSERT_TRUE(issuing.ok());
  EXPECT_TRUE(equal(issuing.value()->der, h.intermediates().back()->der));

  auto upper = aia.fetch(*issuing.value()->aia->ca_issuers_uri);
  ASSERT_TRUE(upper.ok());
  auto root = aia.fetch(*upper.value()->aia->ca_issuers_uri);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value()->is_self_signed());
}

TEST(CaHierarchyTest, PathLenConstraintsAreSatisfiable) {
  const ca::CaHierarchy h = ca::CaHierarchy::create("PathLen CA", 3, nullptr);
  const x509::CertPtr leaf = h.issue_leaf("plen.example.com");
  const auto chain = h.compliant_chain(leaf);
  // chain = [leaf, I3, I2, I1]; I_k at index i has (i-1) intermediates
  // below it and must allow that.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const auto& bc = chain[i]->basic_constraints;
    ASSERT_TRUE(bc.has_value());
    if (bc->path_len_constraint.has_value()) {
      EXPECT_GE(*bc->path_len_constraint, static_cast<int>(i) - 1)
          << "index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Chain normalization (§6.1 recommendation)
// ---------------------------------------------------------------------------

class NormalizeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hierarchy_ = new ca::CaHierarchy(
        ca::CaHierarchy::create("Normalize CA", 2, nullptr));
    other_ = new ca::CaHierarchy(
        ca::CaHierarchy::create("Normalize Other CA", 1, nullptr));
    leaf_ = new x509::CertPtr(hierarchy_->issue_leaf("normalize.example"));
  }
  static ca::CaHierarchy* hierarchy_;
  static ca::CaHierarchy* other_;
  static x509::CertPtr* leaf_;
};

ca::CaHierarchy* NormalizeFixture::hierarchy_ = nullptr;
ca::CaHierarchy* NormalizeFixture::other_ = nullptr;
x509::CertPtr* NormalizeFixture::leaf_ = nullptr;

TEST_F(NormalizeFixture, CompliantChainPassesUntouched) {
  const auto chain = hierarchy_->compliant_chain(*leaf_);
  const auto result = httpserver::normalize_chain(chain);
  EXPECT_FALSE(result.changed());
  EXPECT_TRUE(result.contiguous);
  ASSERT_EQ(result.chain.size(), chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_TRUE(equal(result.chain[i]->fingerprint, chain[i]->fingerprint));
  }
}

TEST_F(NormalizeFixture, EmptyInput) {
  const auto result = httpserver::normalize_chain({});
  EXPECT_TRUE(result.chain.empty());
  EXPECT_FALSE(result.changed());
}

TEST_F(NormalizeFixture, FixesReversedChain) {
  std::vector<x509::CertPtr> reversed = {*leaf_,
                                         hierarchy_->intermediates().front(),
                                         hierarchy_->intermediates().back()};
  const auto result = httpserver::normalize_chain(reversed);
  EXPECT_TRUE(result.changed());
  EXPECT_TRUE(chain::order_compliant(result.chain));
  EXPECT_EQ(result.chain.size(), 3u);
  EXPECT_TRUE(result.dropped.empty());
}

TEST_F(NormalizeFixture, RemovesDuplicatesAndIrrelevant) {
  std::vector<x509::CertPtr> messy = {*leaf_,
                                      *leaf_,  // duplicate leaf
                                      hierarchy_->intermediates().back(),
                                      other_->intermediates().back(),  // junk
                                      hierarchy_->intermediates().back(),
                                      hierarchy_->intermediates().front()};
  const auto result = httpserver::normalize_chain(messy);
  EXPECT_TRUE(result.changed());
  EXPECT_TRUE(chain::order_compliant(result.chain));
  EXPECT_EQ(result.chain.size(), 3u);  // leaf + 2 intermediates
  ASSERT_EQ(result.dropped.size(), 1u);
  EXPECT_EQ(result.dropped[0]->subject.organization().value_or(""),
            "Normalize Other CA");
  // Two duplicate removals + reorder/drop notes were recorded.
  EXPECT_GE(result.fixes.size(), 3u);
}

TEST_F(NormalizeFixture, KeepsIncludedRoot) {
  auto chain = hierarchy_->compliant_chain(*leaf_);
  chain.push_back(hierarchy_->root());
  std::swap(chain[1], chain[2]);  // scramble
  const auto result = httpserver::normalize_chain(chain);
  EXPECT_TRUE(chain::order_compliant(result.chain));
  EXPECT_EQ(result.chain.size(), 4u);
  EXPECT_TRUE(result.chain.back()->is_self_signed());
}

TEST_F(NormalizeFixture, ReportsGapWhenIntermediateMissing) {
  // Leaf + top-tier only: the issuing intermediate is absent, so the
  // provided CA material cannot link.
  std::vector<x509::CertPtr> gappy = {*leaf_,
                                      hierarchy_->intermediates().front()};
  const auto result = httpserver::normalize_chain(gappy);
  EXPECT_FALSE(result.contiguous);
  EXPECT_EQ(result.chain.size(), 1u);  // just the leaf survives
  ASSERT_EQ(result.dropped.size(), 1u);
}

TEST_F(NormalizeFixture, NormalizedChainsSatisfyEveryClient) {
  // After normalization even MbedTLS (no reorder) builds the path.
  std::vector<x509::CertPtr> reversed = {*leaf_,
                                         hierarchy_->intermediates().front(),
                                         hierarchy_->intermediates().back()};
  truststore::RootStore store("normalize");
  store.add(hierarchy_->root());

  const auto mbedtls =
      clients::make_profile(clients::ClientKind::kMbedTls);
  pathbuild::PathBuilder builder(mbedtls.policy, &store);
  EXPECT_FALSE(builder.build(reversed, "normalize.example").ok());

  const auto result = httpserver::normalize_chain(reversed);
  EXPECT_TRUE(builder.build(result.chain, "normalize.example").ok());
}

}  // namespace
}  // namespace chainchaos
