// Corpus calibration: every rate the synthetic Tranco-like corpus is
// tuned to, with defaults taken verbatim from the paper's measurements.
//
// The generator consumes these as *target marginals*; the bench binaries
// then re-measure the generated corpus with the real analyzers, so the
// reproduced tables reflect what the analysis pipeline actually computes
// (injection bugs would show up as paper-vs-measured gaps in
// EXPERIMENTS.md, not silently).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chainchaos::dataset {

/// Per-CA calibration row (paper Table 11). Rates are fractions of that
/// CA's domains exhibiting each *primary* defect.
struct CaCalibration {
  std::string name;
  double share;  ///< fraction of all domains issued by this CA

  double duplicate_rate;
  double irrelevant_rate;
  double multiple_paths_rate;
  double reversed_rate;
  double incomplete_rate;
};

/// Server-software distribution conditioned on a defect class (paper
/// Table 10 row, normalised). Order: Apache, Nginx, Azure, Cloudflare,
/// IIS, AWS ELB, Other.
using ServerMix = std::vector<double>;

struct CorpusConfig {
  std::uint64_t seed = 833;       ///< default honours the Tranco list id
  std::size_t domain_count = 20000;

  /// Include the paper's named case studies (mot.gov.ps, ns3.link,
  /// webcanny.com, archives.gov.tw, assiste6.serpro.gov.br, moex.gov.tw,
  /// the CAcert AIA self-reference) as deterministic exemplar domains.
  bool include_exemplars = true;

  // --- Table 3: leaf placement ------------------------------------------
  double leaf_correct_mismatched_rate = 0.069;
  double leaf_other_rate = 0.006;

  // --- Table 7: completeness --------------------------------------------
  /// Among complete chains: fraction that include the root certificate.
  double root_included_rate = 0.087 / (0.087 + 0.899);

  // --- §4.3: incomplete-chain AIA repair sub-modes ------------------------
  double incomplete_missing_one_rate = 0.722;  ///< single missing cert
  double incomplete_no_aia_rate = 579.0 / 12087.0;
  double incomplete_unreachable_rate = 88.0 / 12087.0;
  /// Fraction of incomplete chains drawn from "rare" hierarchies whose
  /// intermediates never appear in compliant chains — these defeat
  /// Firefox's intermediate cache (finding I-4's browser side).
  double incomplete_rare_hierarchy_rate = 1074.0 / 8553.0;

  // --- Table 5: duplicate sub-types (exclusive shares) --------------------
  double duplicate_leaf_share = 4730.0 / 6485.0;
  double duplicate_intermediate_share = 1354.0 / 6485.0;
  double duplicate_root_share = 401.0 / 6485.0;

  // --- §4.2: irrelevant sub-types ------------------------------------------
  double irrelevant_root_share = 225.0 / 3032.0;
  double irrelevant_stale_leaves_share = 444.0 / 3032.0;
  double irrelevant_other_chain_share = 840.0 / 3032.0;
  // remainder: generic unrelated intermediates

  // --- §4.2: reversed sub-types ---------------------------------------------
  /// Reversed chains that came from a multi-path (cross-signed) layout.
  double reversed_multipath_share = (8566.0 - 8365.0) / 8566.0;

  /// Per-CA calibration (Table 11 + an "Other CAs" remainder bucket).
  std::vector<CaCalibration> cas = default_ca_calibration();

  static std::vector<CaCalibration> default_ca_calibration();

  /// Table 10 server mixes per defect class.
  static ServerMix server_mix_compliant();
  static ServerMix server_mix_duplicates();
  static ServerMix server_mix_irrelevant();
  static ServerMix server_mix_multiple_paths();
  static ServerMix server_mix_reversed();
  static ServerMix server_mix_incomplete();

  static const std::vector<std::string>& server_names();
};

}  // namespace chainchaos::dataset
