#include "clients/capability_tests.hpp"

#include <cassert>

namespace chainchaos::clients {

using pathbuild::BuildResult;
using pathbuild::BuildStatus;
using pathbuild::PathBuilder;
using x509::CertificateBuilder;
using x509::CertPtr;

namespace {

constexpr std::int64_t kNow = 1800000000;  // matches BuildPolicy default
constexpr std::int64_t kYear = 31557600;

bool path_contains(const BuildResult& result, const CertPtr& cert) {
  for (const CertPtr& entry : result.path) {
    if (equal(entry->fingerprint, cert->fingerprint)) return true;
  }
  return false;
}

}  // namespace

CapabilityTester::CapabilityTester(int max_probe_length)
    : max_probe_length_(max_probe_length) {
  root_id_ = x509::make_identity(
      asn1::Name::make("Capability Root CA", "CapTest", "US"));
  {
    CertificateBuilder builder;
    builder.subject(root_id_.name)
        .as_ca()
        .public_key(root_id_.keys.pub)
        .validity(kNow - 8 * kYear, kNow + 8 * kYear);
    root_ = builder.self_sign(root_id_.keys);
  }
  store_.add(root_);

  // Two-tier hierarchy: root -> I2 -> I1 -> E.
  i2_id_ = x509::make_identity(
      asn1::Name::make("Capability Intermediate 2", "CapTest", "US"));
  {
    CertificateBuilder builder;
    builder.subject(i2_id_.name)
        .as_ca()
        .public_key(i2_id_.keys.pub)
        .validity(kNow - 4 * kYear, kNow + 4 * kYear);
    i2_ = builder.sign(root_id_);
  }
  i1_id_ = x509::make_identity(
      asn1::Name::make("Capability Intermediate 1", "CapTest", "US"));
  {
    CertificateBuilder builder;
    builder.subject(i1_id_.name)
        .as_ca()
        .public_key(i1_id_.keys.pub)
        .validity(kNow - 4 * kYear, kNow + 4 * kYear);
    i1_ = builder.sign(i2_id_);
  }
  {
    CertificateBuilder builder;
    builder.as_leaf("cap.example.com").validity(kNow - kYear, kNow + kYear);
    leaf_two_tier_ = builder.sign(i1_id_);
  }

  // AIA fixture: root -> I2a -> I1a -> E; server omits I2a, I1a's AIA
  // resolves it.
  x509::SigningIdentity i2a = x509::make_identity(
      asn1::Name::make("Capability AIA Upper", "CapTest", "US"));
  {
    CertificateBuilder builder;
    builder.subject(i2a.name)
        .as_ca()
        .public_key(i2a.keys.pub)
        .validity(kNow - 4 * kYear, kNow + 4 * kYear);
    aia_i2_ = builder.sign(root_id_);
  }
  aia_.publish("http://cap.example/aia-upper.crt", aia_i2_);
  x509::SigningIdentity i1a = x509::make_identity(
      asn1::Name::make("Capability AIA Lower", "CapTest", "US"));
  {
    CertificateBuilder builder;
    builder.subject(i1a.name)
        .as_ca()
        .public_key(i1a.keys.pub)
        .validity(kNow - 4 * kYear, kNow + 4 * kYear)
        .aia_ca_issuers("http://cap.example/aia-upper.crt");
    aia_i1_ = builder.sign(i2a);
  }
  {
    CertificateBuilder builder;
    builder.as_leaf("aia.example.com").validity(kNow - kYear, kNow + kYear);
    aia_leaf_ = builder.sign(i1a);
  }

  // Self-signed leaf fixture: ES and E share the subject; ES is trusted
  // so an allowing client validates [ES] while a rejecting client errors
  // structurally.
  {
    const crypto::RsaKeyPair& keys =
        crypto::KeyPool::instance().for_name("cap-ss-leaf");
    CertificateBuilder builder;
    builder.as_leaf("ss.example.com")
        .validity(kNow - kYear, kNow + kYear)
        .public_key(keys.pub);
    ss_leaf_ = builder.self_sign(keys);
    store_.add(ss_leaf_);
  }
  {
    CertificateBuilder builder;
    builder.as_leaf("ss.example.com").validity(kNow - kYear, kNow + kYear);
    plain_leaf_ = builder.sign(i1_id_);
  }
}

BuildResult CapabilityTester::build(const ClientProfile& profile,
                                    const std::vector<CertPtr>& list,
                                    const std::string& hostname,
                                    pathbuild::IntermediateCache* cache) {
  PathBuilder builder(profile.policy, &store_, &aia_, cache);
  return builder.build(list, hostname);
}

bool CapabilityTester::test_order_reorganization(const ClientProfile& profile) {
  // {E, I2, I1, R}: intermediates swapped.
  const std::vector<CertPtr> list = {leaf_two_tier_, i2_, i1_, root_};
  return build(profile, list, "cap.example.com").ok();
}

bool CapabilityTester::test_redundancy_elimination(
    const ClientProfile& profile) {
  // {E, X, I, R}: X is unrelated (the AIA fixture's upper intermediate).
  const std::vector<CertPtr> list = {leaf_two_tier_, aia_i2_, i1_, i2_, root_};
  return build(profile, list, "cap.example.com").ok();
}

bool CapabilityTester::test_aia_completion(const ClientProfile& profile,
                                           pathbuild::IntermediateCache* cache) {
  // {E, I1}: the upper intermediate is only reachable via I1's AIA.
  const std::vector<CertPtr> list = {aia_leaf_, aia_i1_};
  return build(profile, list, "aia.example.com", cache).ok();
}

namespace {

/// Issues a same-subject/same-key sibling of `identity`'s certificate
/// with custom tweaks applied by `mutate`.
template <typename Mutator>
CertPtr sibling(const x509::SigningIdentity& subject_id,
                const x509::SigningIdentity& signer, std::int64_t nb,
                std::int64_t na, Mutator&& mutate) {
  CertificateBuilder builder;
  builder.subject(subject_id.name)
      .as_ca()
      .public_key(subject_id.keys.pub)
      .validity(nb, na);
  mutate(builder);
  return builder.sign(signer);
}

}  // namespace

std::string CapabilityTester::test_validity_priority(
    const ClientProfile& profile) {
  // Candidates share I1's subject+key, differ in validity. Listed with
  // the *expired* one first so a no-priority client reveals itself.
  //   I   — valid, 1 year, oldest valid start
  //   I1  — expired
  //   I2  — valid, most recent start
  //   I3  — same start as I, 10-year span
  const auto none = [](CertificateBuilder&) {};
  CertPtr i = sibling(i1_id_, i2_id_, kNow - kYear / 2, kNow + kYear / 2, none);
  CertPtr i1 = sibling(i1_id_, i2_id_, kNow - 3 * kYear, kNow - 2 * kYear, none);
  CertPtr i2 = sibling(i1_id_, i2_id_, kNow - kYear / 4, kNow + kYear, none);
  CertPtr i3 = sibling(i1_id_, i2_id_, kNow - kYear / 2, kNow + 9 * kYear, none);

  const std::vector<CertPtr> list = {leaf_two_tier_, i1, i, i3, i2, i2_, root_};
  const BuildResult result = build(profile, list, "cap.example.com");
  if (result.path.size() < 2) return "?";
  if (path_contains(result, i1)) return "-";    // picked the expired one
  if (path_contains(result, i2)) return "VP2";  // most recent valid
  if (path_contains(result, i) || path_contains(result, i3)) return "VP1";
  return "?";
}

std::string CapabilityTester::test_kid_priority(const ClientProfile& profile) {
  // Candidates share I1's subject+key, differ in SKID: mismatch listed
  // first, then absent, then match.
  CertPtr mismatch = sibling(i1_id_, i2_id_, kNow - kYear, kNow + kYear,
                             [](CertificateBuilder& b) {
                               b.subject_key_id(Bytes(20, 0xee));
                             });
  CertPtr absent = sibling(i1_id_, i2_id_, kNow - kYear, kNow + kYear,
                           [](CertificateBuilder& b) {
                             b.omit_subject_key_id();
                           });
  CertPtr match = sibling(i1_id_, i2_id_, kNow - kYear, kNow + kYear,
                          [](CertificateBuilder&) {});

  const std::vector<CertPtr> list = {leaf_two_tier_, mismatch, absent,
                                     match, i2_, root_};
  const BuildResult result = build(profile, list, "cap.example.com");
  if (result.path.size() < 2) return "?";
  if (path_contains(result, mismatch)) return "-";
  if (path_contains(result, absent)) return "KP1";   // {match,absent} tie,
                                                     // list order wins
  if (path_contains(result, match)) return "KP2";
  return "?";
}

std::string CapabilityTester::test_key_usage_priority(
    const ClientProfile& profile) {
  // Candidates differ in KeyUsage: incorrect first, then missing, then
  // correct.
  CertPtr incorrect = sibling(i1_id_, i2_id_, kNow - kYear, kNow + kYear,
                              [](CertificateBuilder& b) {
                                x509::KeyUsage ku;
                                ku.digital_signature = true;  // no certSign
                                b.key_usage(ku);
                              });
  CertPtr missing = sibling(i1_id_, i2_id_, kNow - kYear, kNow + kYear,
                            [](CertificateBuilder& b) {
                              b.key_usage(std::nullopt);
                            });
  CertPtr correct = sibling(i1_id_, i2_id_, kNow - kYear, kNow + kYear,
                            [](CertificateBuilder&) {});

  const std::vector<CertPtr> list = {leaf_two_tier_, incorrect, missing,
                                     correct, i2_, root_};
  const BuildResult result = build(profile, list, "cap.example.com");
  if (result.path.size() < 2) return "?";
  if (path_contains(result, incorrect)) return "-";
  return "KUP";  // correct-or-missing preferred over incorrect
}

std::string CapabilityTester::test_basic_constraints_priority(
    const ClientProfile& profile) {
  // Two candidates both able to sit at path index 2 (one intermediate
  // below them): pathLen 0 is incorrect there, pathLen 1 is correct.
  // The incorrect one is listed first.
  CertPtr bad = sibling(i2_id_, root_id_, kNow - kYear, kNow + kYear,
                        [](CertificateBuilder& b) {
                          b.basic_constraints(x509::BasicConstraints{true, 0});
                        });
  CertPtr good = sibling(i2_id_, root_id_, kNow - kYear, kNow + kYear,
                         [](CertificateBuilder& b) {
                           b.basic_constraints(x509::BasicConstraints{true, 1});
                         });

  const std::vector<CertPtr> list = {leaf_two_tier_, i1_, bad, good, root_};
  const BuildResult result = build(profile, list, "cap.example.com");
  if (result.path.size() < 3) return "?";
  if (path_contains(result, bad)) return "-";
  if (path_contains(result, good)) return "BP";
  return "?";
}

void CapabilityTester::ensure_depth_chain(int levels) {
  while (static_cast<int>(tower_.size()) < levels) {
    const int level = static_cast<int>(tower_.size()) + 1;
    x509::SigningIdentity id = x509::make_identity(asn1::Name::make(
        "Capability Tower " + std::to_string(level), "CapTest", "US"));
    const x509::SigningIdentity& parent =
        level == 1 ? root_id_ : tower_ids_.back();
    CertificateBuilder builder;
    builder.subject(id.name)
        .as_ca()
        .public_key(id.keys.pub)
        .validity(kNow - 4 * kYear, kNow + 4 * kYear);
    tower_.push_back(builder.sign(parent));
    tower_ids_.push_back(std::move(id));
  }
}

int CapabilityTester::test_path_length_limit(const ClientProfile& profile) {
  // Chain with n intermediates has total length n+2 (leaf + n + root).
  int longest_ok = 0;
  for (int n = 1; n + 2 <= max_probe_length_; ++n) {
    ensure_depth_chain(n);
    CertificateBuilder leaf_builder;
    leaf_builder.as_leaf("depth.example.com")
        .validity(kNow - kYear, kNow + kYear);
    CertPtr leaf = leaf_builder.sign(tower_ids_[static_cast<std::size_t>(n - 1)]);

    std::vector<CertPtr> list;
    list.push_back(leaf);
    for (int level = n; level >= 1; --level) {
      list.push_back(tower_[static_cast<std::size_t>(level - 1)]);
    }
    list.push_back(root_);

    if (build(profile, list, "depth.example.com").ok()) {
      longest_ok = n + 2;
    } else {
      return longest_ok;
    }
  }
  return max_probe_length_ + 1;  // no limit found within the probe
}

bool CapabilityTester::test_self_signed_leaf(const ClientProfile& profile) {
  // {ES, E, I, R}: ES is a trusted self-signed twin of E. A client that
  // allows self-signed leaves validates [ES]; others reject structurally.
  const std::vector<CertPtr> list = {ss_leaf_, plain_leaf_, i1_, i2_, root_};
  return build(profile, list, "ss.example.com").ok();
}

CapabilityRow CapabilityTester::evaluate(const ClientProfile& profile) {
  CapabilityRow row;
  row.client = profile.name;
  row.order_reorganization = test_order_reorganization(profile);
  row.redundancy_elimination = test_redundancy_elimination(profile);

  if (profile.policy.intermediate_cache) {
    // Firefox's compensation: cold AIA fails, a seeded cache succeeds.
    row.aia_completion = test_aia_completion(profile, nullptr);
  } else {
    row.aia_completion = test_aia_completion(profile, nullptr);
  }

  row.validity_priority = test_validity_priority(profile);
  row.kid_priority = test_kid_priority(profile);
  row.key_usage_priority = test_key_usage_priority(profile);
  row.basic_constraints_priority = test_basic_constraints_priority(profile);

  const int limit = test_path_length_limit(profile);
  row.path_length = limit > max_probe_length_
                        ? ">" + std::to_string(max_probe_length_)
                        : "=" + std::to_string(limit);
  row.self_signed_leaf = test_self_signed_leaf(profile);
  return row;
}

}  // namespace chainchaos::clients
