#!/usr/bin/env bash
# End-to-end smoke test for the chaind analysis service.
#
# Starts chaind on an ephemeral loopback port, issues repeated chainq
# queries over the JSON API, asserts a non-zero cache hit ratio, and
# checks that SIGTERM produces a graceful (exit 0) shutdown.
#
# Usage: service_smoke.sh <chaind-binary> <chainq-binary>
set -euo pipefail

CHAIND=${1:?usage: service_smoke.sh <chaind> <chainq>}
CHAINQ=${2:?usage: service_smoke.sh <chaind> <chainq>}

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"; [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true' EXIT

CHAIN="$WORKDIR/chain.pem"
PORT_FILE="$WORKDIR/port.txt"

"$CHAINQ" make-chain "$CHAIN"

"$CHAIND" --port 0 --port-file "$PORT_FILE" --duration 120 \
    >"$WORKDIR/chaind.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to publish its ephemeral port.
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "FAIL: chaind never wrote its port file"; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "chaind is up on 127.0.0.1:$PORT"

"$CHAINQ" --port "$PORT" health >/dev/null

# Repeated identical queries: everything after the first must hit the
# result cache.
"$CHAINQ" --port "$PORT" --repeat 10 analyze "$CHAIN" >"$WORKDIR/analyze.json"
grep -q '"compliant":true' "$WORKDIR/analyze.json" \
    || { echo "FAIL: analyze response missing compliance verdict"; exit 1; }

"$CHAINQ" --port "$PORT" --repeat 3 lint "$CHAIN" >/dev/null

STATS=$("$CHAINQ" --port "$PORT" stats)
echo "$STATS"
HITS=$(echo "$STATS" | sed -n 's/.*"hits":\([0-9]*\).*/\1/p')
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] \
    || { echo "FAIL: expected a non-zero cache hit count, got '$HITS'"; exit 1; }
echo "cache hits: $HITS"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "FAIL: chaind exited with $RC"; exit 1; }
grep -q "shutting down" "$WORKDIR/chaind.log" \
    || { echo "FAIL: no shutdown banner in chaind log"; exit 1; }

echo "service smoke OK"
