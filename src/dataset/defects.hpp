// Defect injectors: transformations that turn a compliant certificate
// chain into each of the paper's non-compliance types (Table 5 taxonomy,
// §4.3 completeness defects, Table 3 leaf defects).
//
// Each injector is a pure function over the chain plus the zoo's shared
// structures; the generator composes them according to the calibrated
// rates in CorpusConfig.
#pragma once

#include <string>
#include <vector>

#include "dataset/zoo.hpp"
#include "support/rng.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::dataset {

/// Ground-truth label for what was injected (tests assert the analyzers
/// recover these; benches bucket by them).
enum class DefectType {
  kNone,
  // order defects (Table 5)
  kDuplicateLeaf,
  kDuplicateIntermediate,
  kDuplicateRoot,
  kIrrelevantRoot,
  kStaleLeaves,
  kIrrelevantOtherChain,
  kIrrelevantIntermediate,
  kMultiplePathsCrossSign,
  kMultiplePathsTwinValidity,
  kReversedSequence,
  // completeness defects (§4.3)
  kMissingIntermediate,
  kMissingIntermediateNoAia,
  kMissingIntermediateDeadAia,
  // leaf defects (Table 3)
  kLeafMismatched,
  kLeafOther,
};

const char* to_string(DefectType type);

/// True for the order-noncompliance taxonomy entries.
bool is_order_defect(DefectType type);
/// True for the missing-intermediate family.
bool is_completeness_defect(DefectType type);

using Chain = std::vector<x509::CertPtr>;

// --- duplicate injectors ---------------------------------------------------

/// Duplicates the leaf right after itself (the dominant real pattern:
/// two leaves at the front).
Chain inject_duplicate_leaf(Chain chain);

/// Duplicates one intermediate at a random later position.
Chain inject_duplicate_intermediate(Chain chain, Rng& rng);

/// Appends a duplicate of the chain's root; if the chain has no root,
/// the hierarchy root is appended twice.
Chain inject_duplicate_root(Chain chain, const ca::CaHierarchy& hierarchy);

// --- irrelevant-certificate injectors ---------------------------------------

/// Appends an unrelated self-signed certificate (public-CA root with no
/// issuing relationship to the leaf).
Chain inject_irrelevant_root(Chain chain, const x509::CertPtr& foreign_root);

/// Inserts stale leaf certificates for the same domain (renewal leftovers,
/// newest first — the webcanny.com pattern). `count` extra leaves.
Chain inject_stale_leaves(Chain chain, const ca::CaHierarchy& hierarchy,
                          const std::string& domain, int count);

/// Appends (part of) a second, unrelated chain (the archives.gov.tw
/// pattern: another CA's intermediates managed by the same admin).
Chain inject_other_chain(Chain chain, const ca::CaHierarchy& other);

/// Appends a single unrelated intermediate certificate.
Chain inject_irrelevant_intermediate(Chain chain,
                                     const ca::CaHierarchy& other);

// --- multi-path injectors -----------------------------------------------------

/// Figure 2c: the hierarchy's full chain plus a cross-signed twin of
/// its root inserted *before* the self-signed original, creating two
/// leaf paths and a reversed edge.
Chain inject_cross_sign_multipath(const std::string& domain, CaZoo& zoo,
                                  const ca::CaHierarchy& hierarchy);

/// The rarer variant: two issuing intermediates with identical subject
/// and issuer, different validity windows.
Chain inject_twin_validity_multipath(const std::string& domain, CaZoo& zoo,
                                     const ca::CaHierarchy& hierarchy);

// --- reversed-sequence injector -----------------------------------------------

/// Reverses everything after the leaf (the naive merge of a reversed
/// ca-bundle: 1->2->0 and 1->2->3->0 patterns). Chains with a single
/// intermediate first gain the hierarchy root (resellers shipping
/// reversed bundles include the root, Table 6), so there is always
/// something to reverse.
Chain inject_reversed(Chain chain, const ca::CaHierarchy& hierarchy);

// --- completeness injectors -----------------------------------------------------

/// Drops `how_many` intermediates starting from the one closest to the
/// leaf. AIA on the remaining certificates is untouched, so the chain
/// stays repairable.
Chain inject_missing_intermediate(Chain chain, int how_many);

/// Missing intermediate where the leaf also lacks the AIA extension
/// (unrepairable: kNoAiaField). Re-issues the leaf without AIA.
Chain make_missing_no_aia(const std::string& domain,
                          const ca::CaHierarchy& hierarchy);

/// Missing intermediate whose AIA URI is dead (unrepairable:
/// kUnreachable). Re-issues the leaf with a per-domain dead URI.
Chain make_missing_dead_aia(const std::string& domain,
                            const ca::CaHierarchy& hierarchy,
                            net::AiaRepository& aia);

// --- leaf-placement injectors ----------------------------------------------------

/// Leaf for a different (hosting-provider) identity: domain-shaped but
/// not matching the queried domain.
Chain make_mismatched_leaf_chain(const std::string& domain,
                                 const ca::CaHierarchy& hierarchy,
                                 Rng& rng);

/// "Other" leaf: a lone self-signed certificate with a non-domain CN
/// (Plesk / localhost / testexp / empty).
Chain make_other_leaf_chain(Rng& rng);

}  // namespace chainchaos::dataset
