#include "net/aia_repository.hpp"

#include "net/http.hpp"
#include "obs/trace.hpp"

namespace chainchaos::net {

void AiaRepository::publish(const std::string& uri, x509::CertPtr cert) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[uri] = Entry{std::move(cert), false, FaultSpec{}};
}

void AiaRepository::mark_unreachable(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[uri].unreachable = true;
}

void AiaRepository::inject_fault(const std::string& uri, FaultSpec fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[uri].fault = fault;
}

void AiaRepository::inject_fault_all(FaultSpec fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [uri, entry] : entries_) entry.fault = fault;
}

void AiaRepository::clear_faults() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [uri, entry] : entries_) entry.fault = FaultSpec{};
}

Result<x509::CertPtr> AiaRepository::attempt_locked(const std::string& uri,
                                                    int attempt) {
  ++stats_.attempts;
  stats_.simulated_latency_ms += latency_ms_;

  // The fetch round-trips real HTTP framing: the "client" side encodes a
  // GET and parses whatever comes back; the "origin" side parses the
  // request and serves the DER blob. Mirrors what production AIA
  // chasing does (and why the paper flags its plain-HTTP privacy and
  // MitM exposure).
  auto url = parse_url(uri);
  if (!url.ok()) {
    ++stats_.misses;
    return url.error();
  }
  HttpRequest request;
  request.target = url.value().path;
  request.host = url.value().host;
  request.headers["accept"] = "application/pkix-cert";
  const std::string wire_request = request.encode();

  // --- origin side ---
  auto parsed_request = parse_request(wire_request);
  if (!parsed_request.ok()) {
    ++stats_.misses;
    return parsed_request.error();
  }
  const auto it = entries_.find(uri);
  const FaultSpec fault =
      it != entries_.end() ? it->second.fault : FaultSpec{};
  stats_.simulated_latency_ms += fault.extra_latency_ms;
  if (it != entries_.end() &&
      (it->second.unreachable || fault.permanent)) {
    // Connection-level failure: no HTTP response at all.
    ++stats_.unreachable;
    return make_error("aia.unreachable", uri);
  }
  if (attempt < fault.transient_failures) {
    // Injected transient fault: the connection drops before a response.
    // Scheduled per fetch() call, so concurrent builders racing on one
    // URI all see the same outcome sequence.
    ++stats_.transient_failures;
    return make_error("aia.transient", uri);
  }
  Bytes wire_response;
  if (it == entries_.end() || !it->second.cert) {
    wire_response = http_not_found().encode();
  } else if (fault.garbage_response) {
    // The origin answers 200 with bytes that are not a certificate —
    // the CAcert-style wrong-object failure, transport edition.
    wire_response =
        http_ok(to_bytes("<html>not a certificate</html>"),
                "application/pkix-cert")
            .encode();
  } else if (fault.truncated_response) {
    Bytes half(it->second.cert->der.begin(),
               it->second.cert->der.begin() +
                   static_cast<std::ptrdiff_t>(it->second.cert->der.size() / 2));
    wire_response = http_ok(half, "application/pkix-cert").encode();
  } else {
    wire_response =
        http_ok(it->second.cert->der, "application/pkix-cert").encode();
  }

  // --- client side ---
  auto response = parse_response(wire_response);
  if (!response.ok()) {
    ++stats_.misses;
    return response.error();
  }
  if (response.value().status != 200) {
    ++stats_.misses;
    return make_error("aia.not_found", uri);
  }
  auto cert = x509::parse_certificate(response.value().body);
  if (!cert.ok()) {
    // Served bytes that do not decode (garbage or truncated object):
    // permanent as far as retrying is concerned — the origin will keep
    // serving the same wrong object.
    ++stats_.misses;
    ++stats_.corrupt_responses;
    return cert.error();
  }
  ++stats_.hits;
  stats_.bytes_served += response.value().body.size();
  return std::move(cert).value();
}

bool AiaRepository::is_transient(const Error& error) {
  return error.code == "aia.transient";
}

Result<x509::CertPtr> AiaRepository::fetch(const std::string& uri) {
  return fetch(uri, FetchPolicy{});
}

Result<x509::CertPtr> AiaRepository::fetch(const std::string& uri,
                                           const FetchPolicy& policy) {
  CHAINCHAOS_SPAN(obs::Stage::kAiaFetch);
  // One lock for the whole logical fetch keeps the entry lookup, the
  // retry schedule, and the counters consistent; fetches are rare
  // (incomplete chains only), and the backoff is simulated rather than
  // slept, so the serialization is invisible next to the signature-check
  // work the engine's threads spend their time on.
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t elapsed_ms = 0;
  Result<x509::CertPtr> last = make_error("aia.unreachable", uri);
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    last = attempt_locked(uri, attempt);
    elapsed_ms += latency_ms_;
    if (last.ok() || !is_transient(last.error())) return last;
    if (attempt == policy.max_retries) break;
    // Capped exponential backoff before the next attempt, charged to the
    // simulated clock and checked against the per-fetch budget.
    std::uint64_t backoff = policy.base_backoff_ms;
    for (int k = 0; k < attempt && backoff < policy.max_backoff_ms; ++k) {
      backoff <<= 1;
    }
    if (backoff > policy.max_backoff_ms) backoff = policy.max_backoff_ms;
    stats_.simulated_latency_ms += backoff;
    elapsed_ms += backoff;
    if (policy.deadline_ms != 0 && elapsed_ms >= policy.deadline_ms) {
      ++stats_.deadline_exceeded;
      return make_error("aia.deadline",
                        uri + " (budget " +
                            std::to_string(policy.deadline_ms) + "ms)");
    }
    ++stats_.retries;
  }
  return last;
}

bool AiaRepository::reachable(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(uri);
  return it != entries_.end() && !it->second.unreachable && it->second.cert;
}

FetchStats AiaRepository::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AiaRepository::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.reset();
}

std::size_t AiaRepository::published_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<AiaEntrySnapshot> AiaRepository::snapshot_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AiaEntrySnapshot> snapshot;
  snapshot.reserve(entries_.size());
  for (const auto& [uri, entry] : entries_) {
    snapshot.push_back(AiaEntrySnapshot{uri, entry.cert, entry.unreachable});
  }
  return snapshot;
}

void AiaRepository::replay_snapshot(
    const std::vector<AiaEntrySnapshot>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const AiaEntrySnapshot& entry : entries) {
    Entry& slot = entries_[entry.uri];
    if (entry.cert) slot.cert = entry.cert;
    slot.unreachable = entry.unreachable;
  }
}

}  // namespace chainchaos::net
