// Deterministic random number generation.
//
// Every stochastic component (corpus generator, failure injection, key
// generation) draws from an explicitly seeded Rng so that benches and
// tests reproduce bit-identical output on every run. No component in the
// library may touch a global or wall-clock-seeded RNG.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace chainchaos {

/// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
/// simulation workloads (not for cryptographic use; see crypto/ for keys,
/// which also derive deterministically from an Rng by design).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Index drawn from a discrete distribution proportional to `weights`.
  /// Zero-total weights fall back to index 0.
  std::size_t weighted(const std::vector<double>& weights);

  /// Derives an independent child stream; used to give each simulated
  /// domain / CA / client its own reproducible randomness regardless of
  /// evaluation order.
  Rng fork(std::uint64_t salt);

  /// Stable 64-bit hash of a string, for seeding forks by name.
  static std::uint64_t hash(std::string_view s);

 private:
  std::uint64_t s_[4];
};

}  // namespace chainchaos
