#include "crypto/rsa.hpp"

#include <array>
#include <cassert>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace chainchaos::crypto {

namespace {

// Small primes for fast trial division before Miller–Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool miller_rabin_round(const BigInt& n, const BigInt& n_minus_1,
                        const BigInt& d, int r, const BigInt& witness) {
  BigInt x = BigInt::mod_pow(witness, d, n);
  if (x == BigInt(1) || x == n_minus_1) return true;
  for (int i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  int r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  if (n.bit_length() <= 64) {
    // Deterministic witness set valid for all n < 3.3e24.
    for (std::uint32_t w : {2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u, 23u, 29u, 31u, 37u}) {
      const BigInt witness(w);
      if (witness >= n_minus_1) continue;
      if (!miller_rabin_round(n, n_minus_1, d, r, witness)) return false;
    }
    return true;
  }

  for (int i = 0; i < rounds; ++i) {
    // Random witness in [2, n-2].
    BigInt witness = BigInt::random_with_bits(rng, n.bit_length() - 1);
    if (witness < BigInt(2)) witness = BigInt(2);
    if (witness >= n_minus_1) witness = witness % n_minus_1;
    if (witness < BigInt(2)) witness = BigInt(2);
    if (!miller_rabin_round(n, n_minus_1, d, r, witness)) return false;
  }
  return true;
}

BigInt generate_prime(Rng& rng, int bits) {
  assert(bits >= 16);
  for (;;) {
    BigInt candidate = BigInt::random_with_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    // Walk odd numbers from the candidate; bounded walk keeps the bit
    // length stable with overwhelming probability.
    for (int step = 0; step < 512; ++step) {
      if (candidate.bit_length() != bits) break;
      if (is_probable_prime(candidate, rng)) return candidate;
      candidate = candidate + BigInt(2);
    }
  }
}

Bytes RsaPublicKey::fingerprint_material() const {
  Bytes out = n.to_bytes();
  append(out, e.to_bytes());
  return out;
}

RsaPublicKey& RsaPublicKey::operator=(const RsaPublicKey& other) {
  if (this == &other) return *this;
  n = other.n;
  e = other.e;
  delete accel_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

RsaPublicKey& RsaPublicKey::operator=(RsaPublicKey&& other) noexcept {
  if (this == &other) return *this;
  n = std::move(other.n);
  e = std::move(other.e);
  delete accel_.exchange(other.accel_.exchange(nullptr, std::memory_order_acq_rel),
                         std::memory_order_acq_rel);
  return *this;
}

const detail::RsaKeyAccel& RsaPublicKey::accel() const {
  if (const detail::RsaKeyAccel* existing =
          accel_.load(std::memory_order_acquire)) {
    return *existing;
  }
  auto* fresh = new detail::RsaKeyAccel;
  fresh->fingerprint = Sha256::digest(fingerprint_material());
  if (MontgomeryContext::suitable(n)) fresh->mont.emplace(n);
  const detail::RsaKeyAccel* expected = nullptr;
  if (accel_.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;  // lost the publication race; use the winner
  return *expected;
}

RsaKeyPair generate_keypair(Rng& rng, int modulus_bits) {
  assert(modulus_bits >= 128 && modulus_bits % 2 == 0);
  const BigInt e(65537);
  for (;;) {
    const BigInt p = generate_prime(rng, modulus_bits / 2);
    BigInt q = generate_prime(rng, modulus_bits / 2);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    const BigInt d = BigInt::mod_inverse(e, phi);
    if (d.is_zero()) continue;
    const BigInt qinv = BigInt::mod_inverse(q, p);
    if (qinv.is_zero()) continue;
    RsaKeyPair pair;
    pair.pub = RsaPublicKey{n, e};
    pair.priv = RsaPrivateKey{n,
                              e,
                              d,
                              p,
                              q,
                              d % (p - BigInt(1)),
                              d % (q - BigInt(1)),
                              qinv};
    return pair;
  }
}

// PKCS#1 v1.5 style DigestInfo-less padding:
//   0x00 0x01 FF..FF 0x00 || SHA-256(message)
// (We omit the ASN.1 DigestInfo wrapper; the hash algorithm is fixed
// library-wide, so the wrapper would carry no information.)
Bytes rsa_pad_digest(BytesView digest, std::size_t width) {
  if (width < digest.size() + 11) {
    throw std::invalid_argument("rsa: modulus too small for digest");
  }
  Bytes em;
  em.reserve(width);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), width - digest.size() - 3, 0xff);
  em.push_back(0x00);
  append(em, digest);
  return em;
}

Bytes rsa_padded_digest(BytesView message, std::size_t width) {
  return rsa_pad_digest(Sha256::digest(message), width);
}

Bytes rsa_sign(const RsaPrivateKey& key, BytesView message) {
  const std::size_t width = static_cast<std::size_t>((key.n.bit_length() + 7) / 8);
  const Bytes em = rsa_padded_digest(message, width);
  const BigInt m = BigInt::from_bytes(em);
  BigInt s;
  if (key.has_crt()) {
    // Garner recombination: s = s_q + q * (qinv * (s_p - s_q) mod p).
    const BigInt sp = BigInt::mod_pow(m % key.p, key.dp, key.p);
    const BigInt sq = BigInt::mod_pow(m % key.q, key.dq, key.q);
    const BigInt diff = (sp + key.p - (sq % key.p)) % key.p;
    const BigInt h = (key.qinv * diff) % key.p;
    s = sq + key.q * h;
  } else {
    s = BigInt::mod_pow(m, key.d, key.n);
  }
  return s.to_bytes_padded(width);
}

// rsa_verify lives in verifier.cpp: it is a thin shim over
// crypto::Verifier, the single verification entry point.

KeyPool& KeyPool::instance() {
  static KeyPool pool;
  return pool;
}

KeyPool::KeyPool() : rng_(0x43484149u /* "CHAI" */) {
  if (const char* env = std::getenv("CHAINCHAOS_KEY_CACHE")) {
    cache_path_ = (std::string(env) == "off") ? std::string{} : env;
  } else {
    std::error_code ec;
    const auto tmp = std::filesystem::temp_directory_path(ec);
    if (!ec) cache_path_ = (tmp / "chainchaos_keypool.v1").string();
  }
  load_cache();
}

void KeyPool::load_cache() {
  if (cache_path_.empty()) return;
  std::ifstream in(cache_path_);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string n, e, d, p, q, dp, dq, qinv;
    if (!(fields >> n >> e >> d >> p >> q >> dp >> dq >> qinv)) break;
    RsaKeyPair pair;
    try {
      pair.pub = RsaPublicKey{BigInt::from_hex(n), BigInt::from_hex(e)};
      pair.priv = RsaPrivateKey{
          BigInt::from_hex(n),  BigInt::from_hex(e),  BigInt::from_hex(d),
          BigInt::from_hex(p),  BigInt::from_hex(q),  BigInt::from_hex(dp),
          BigInt::from_hex(dq), BigInt::from_hex(qinv)};
    } catch (const std::exception&) {
      break;  // corrupt tail: regenerate from here on
    }
    keys_.push_back(std::move(pair));
  }
  cached_loaded_ = keys_.size();
  // Keys beyond the cache must continue the deterministic stream, so
  // fast-forward the RNG over what the cache already covers by replaying
  // generation draws is impossible cheaply; instead, trust the cache
  // only if it was produced by this same seed — verified lazily: the
  // first freshly generated key after a cache load is appended, and a
  // mixed file stays consistent because generation always happens in
  // index order within one process. To keep determinism *across* cache
  // states, the RNG is re-seeded per index.
}

const RsaKeyPair& KeyPool::at(std::size_t index) {
  while (keys_.size() <= index) {
    // Per-index seeding keeps key #i identical whether or not earlier
    // keys came from the disk cache.
    Rng key_rng(0x43484149ULL ^ (0x9e3779b97f4a7c15ULL * (keys_.size() + 1)));
    RsaKeyPair pair = generate_keypair(key_rng);
    append_to_cache(pair);
    keys_.push_back(std::move(pair));
  }
  return keys_[index];
}

void KeyPool::append_to_cache(const RsaKeyPair& pair) {
  if (cache_path_.empty()) return;
  std::ofstream out(cache_path_, std::ios::app);
  if (!out) return;
  out << pair.pub.n.to_hex() << ' ' << pair.pub.e.to_hex() << ' '
      << pair.priv.d.to_hex() << ' ' << pair.priv.p.to_hex() << ' '
      << pair.priv.q.to_hex() << ' ' << pair.priv.dp.to_hex() << ' '
      << pair.priv.dq.to_hex() << ' ' << pair.priv.qinv.to_hex() << '\n';
}

const RsaKeyPair& KeyPool::leaf_slot(std::string_view name) {
  constexpr std::size_t kLeafSlots = 32;
  return at(kLeafSlots + (Rng::hash(name) % kLeafSlots));
}

const RsaKeyPair& KeyPool::for_name(std::string_view name) {
  // Each distinct name gets its own keypair so that key identifiers never
  // collide between different signing identities (a collision would
  // corrupt SKID/AKID matching in the analyses). Corpus generation is
  // deterministic and single-threaded, so assignment order — and thus the
  // name→key mapping — reproduces across runs.
  auto [it, inserted] = named_.try_emplace(std::string(name), named_.size());
  return at(it->second);
}

}  // namespace chainchaos::crypto
