// chainwatch event log: structured, lock-free ring of discrete events
// (DESIGN.md §5.16).
//
// Spans (trace.hpp) answer "where does the time go"; events answer "what
// happened, in order" — a connection opened, a request arrived, a handler
// ran slow, an eviction fired, a sweep shard finished. Each event is a
// fixed-size POD record so the newest window can be dumped from a signal
// handler without touching the allocator, and the ring is the flight
// recorder's primary data source.
//
// Concurrency model:
//   * emit() is wait-free for writers: one relaxed fetch_add reserves a
//     sequence number, the slot at seq % capacity is overwritten, and a
//     per-slot commit word (seq + 1, release) publishes it;
//   * readers (collect(), the flight dump) walk the newest window and
//     re-check the commit word after copying — a record that changed
//     mid-copy is torn and silently skipped rather than misreported;
//   * the optional JSONL sink is mutex-guarded and rate-limited (token
//     window per wall-clock second); when the limit trips, events still
//     land in the ring — only the file line is suppressed and counted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace chainchaos::obs {

enum class EventLevel : std::uint8_t { kDebug, kInfo, kWarn, kError };

const char* to_string(EventLevel level);

/// One structured event. Fixed-size POD: the kind/detail strings are
/// truncating char arrays (always NUL-terminated) so a record can be
/// copied and formatted from an async-signal context.
struct EventRecord {
  std::uint64_t seq = 0;       ///< global emission order, dense from 0
  std::uint64_t t_ns = 0;      ///< Tracer::now_ns() timestamp
  std::uint64_t conn_id = 0;   ///< connection correlation id; 0 = none
  std::uint64_t trace_id = 0;  ///< x-trace-id hash; 0 = none
  std::uint64_t value = 0;     ///< kind-specific payload (status, micros…)
  EventLevel level = EventLevel::kInfo;
  char kind[24] = {0};    ///< dotted event name, e.g. "conn.open"
  char detail[96] = {0};  ///< free-text payload, e.g. "POST /v1/analyze"
};

/// Process-wide event ring. Singleton for the same reason Tracer is one:
/// emission sites (epoll loop, worker pool, engine shards, chaos
/// campaign) must not need a logger threaded through every API.
class EventLog {
 public:
  static EventLog& instance();

  /// Runtime switch; starts off. While off, emit() is one relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Resizes the ring (rounded up to a power of two, default 4096).
  /// Only call while no emitters are running — it reallocates the slots.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  /// Records an event in the ring and, when a sink is open and the rate
  /// limiter allows, appends one JSONL line to it. Safe from any thread;
  /// never allocates on the ring path.
  void emit(EventLevel level, std::string_view kind, std::string_view detail,
            std::uint64_t value = 0, std::uint64_t conn_id = 0,
            std::uint64_t trace_id = 0);

  /// Opens a JSONL sink at `path` (append). At most `max_lines_per_sec`
  /// events are written per wall-clock second; the overflow is counted
  /// in sink_suppressed(). Returns false when the file cannot be opened.
  bool open_sink(const std::string& path, std::uint64_t max_lines_per_sec = 1000);
  void close_sink();

  /// Newest `max` committed events, oldest first. Torn slots (overwritten
  /// mid-copy by a lapping writer) are skipped.
  std::vector<EventRecord> collect(std::size_t max) const;

  std::uint64_t emitted() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  std::uint64_t sink_written() const {
    return sink_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t sink_suppressed() const {
    return sink_suppressed_.load(std::memory_order_relaxed);
  }

  /// Clears the ring and counters and closes any sink. Tests only; the
  /// live daemon accumulates forever (the ring wraps by design).
  void reset();

  // --- flight-recorder internals (async-signal-safe accessors) ---------
  struct Slot {
    std::atomic<std::uint64_t> commit{0};  ///< seq + 1 once published
    EventRecord record;
  };
  const Slot* slots() const { return slots_; }
  std::uint64_t cursor() const {
    return cursor_.load(std::memory_order_acquire);
  }

 private:
  EventLog();

  void sink_write(const EventRecord& record);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> cursor_{0};
  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  /// Arrays replaced by set_capacity — kept alive (emitters may still
  /// hold the pointer), parked here so the memory stays reachable.
  std::vector<Slot*> retired_;

  mutable std::mutex sink_mutex_;
  std::atomic<bool> sink_open_{false};
  int sink_fd_ = -1;
  std::uint64_t sink_limit_ = 0;
  std::uint64_t window_start_s_ = 0;
  std::uint64_t window_count_ = 0;
  std::atomic<std::uint64_t> sink_written_{0};
  std::atomic<std::uint64_t> sink_suppressed_{0};
};

/// One event as a single JSONL line (no trailing newline).
std::string to_jsonl(const EventRecord& record);

/// Prometheus families for the event subsystem (emitted/sink counters),
/// appended to /v1/metrics alongside the stage metrics.
std::string render_event_metrics();

}  // namespace chainchaos::obs
