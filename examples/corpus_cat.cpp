// corpus_cat: inspect a packed corpus file without sweeping it.
//
// Usage:  corpus_cat <file>                  header + section summary
//         corpus_cat <file> --list           one line per record (index)
//         corpus_cat <file> --record I       decode record I, PEM chain
//         corpus_cat <file> --verify         full checksum verification
//
// --list reads only the index (O(records) but never touches the data
// section); --record decodes exactly one record out of the mapping.
#include <cstdio>

#include "cli_common.hpp"
#include "corpusio/reader.hpp"
#include "dataset/defects.hpp"
#include "x509/certificate.hpp"

using namespace chainchaos;

namespace {

const char* defect_name(std::uint8_t wire) {
  if (wire > corpusio::kMaxDefectWire) return "?";
  return dataset::to_string(static_cast<dataset::DefectType>(wire));
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool verify = false;
  std::int64_t record_index = -1;
  cli::Flags flags("<file>");
  flags.add("--list", &list);
  flags.add("--verify", &verify);
  flags.add("--record", &record_index, "I");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.positionals().size() != 1) {
    std::fprintf(stderr, "%s", flags.usage(argv[0]).c_str());
    return 1;
  }
  const std::string path = flags.positionals()[0];

  auto opened = corpusio::CorpusReader::open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 opened.error().to_string().c_str());
    return 1;
  }
  const corpusio::CorpusReader& reader = *opened.value();
  const corpusio::FileHeader& h = reader.header();

  if (record_index >= 0) {
    if (static_cast<std::uint64_t>(record_index) >= h.record_count) {
      std::fprintf(stderr, "record %lld out of range (%llu records)\n",
                   static_cast<long long>(record_index),
                   static_cast<unsigned long long>(h.record_count));
      return 1;
    }
    auto record = reader.decode_record(static_cast<std::size_t>(record_index));
    if (!record.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   record.error().to_string().c_str());
      return 1;
    }
    const dataset::DomainRecord& r = record.value();
    std::printf("# domain=%s ca=%s server=%s primary=%s leaf=%s certs=%zu\n",
                r.observation.domain.c_str(), r.observation.ca_name.c_str(),
                r.observation.server_software.c_str(),
                dataset::to_string(r.primary_defect),
                dataset::to_string(r.leaf_defect),
                r.observation.certificates.size());
    for (const x509::CertPtr& cert : r.observation.certificates) {
      std::fputs(x509::to_pem(*cert).c_str(), stdout);
    }
    return 0;
  }

  if (verify) {
    auto verified = reader.verify();
    if (!verified.ok()) {
      std::fprintf(stderr, "verification FAILED: %s\n",
                   verified.error().to_string().c_str());
      return 1;
    }
    std::printf("%s: file and %zu record checksums OK\n", path.c_str(),
                reader.size());
    return 0;
  }

  if (list) {
    for (std::size_t i = 0; i < reader.size(); ++i) {
      const corpusio::IndexEntry e = reader.index_entry(i);
      std::printf("%8zu  off=%-12llu len=%-8u certs=%-3u primary=%-28s "
                  "leaf=%s%s\n",
                  i, static_cast<unsigned long long>(e.offset), e.length,
                  e.cert_count, defect_name(e.primary_defect),
                  defect_name(e.leaf_defect),
                  (e.flags & corpusio::kFlagExemplar) ? "  [exemplar]" : "");
    }
    return 0;
  }

  std::printf("%s\n", path.c_str());
  std::printf("  format version   %u\n", h.version);
  std::printf("  records          %llu\n",
              static_cast<unsigned long long>(h.record_count));
  std::printf("  generated with   seed=%llu domains=%llu exemplars=%s\n",
              static_cast<unsigned long long>(h.seed),
              static_cast<unsigned long long>(h.domain_count),
              h.include_exemplars() ? "yes" : "no");
  std::printf("  data section     %llu bytes at %llu\n",
              static_cast<unsigned long long>(h.data_bytes),
              static_cast<unsigned long long>(h.data_offset));
  std::printf("  env section      %llu bytes at %llu\n",
              static_cast<unsigned long long>(h.env_bytes),
              static_cast<unsigned long long>(h.env_offset));
  std::printf("  index section    %llu bytes at %llu\n",
              static_cast<unsigned long long>(h.index_bytes),
              static_cast<unsigned long long>(h.index_offset));
  std::printf("  file checksum    %016llx\n",
              static_cast<unsigned long long>(h.file_checksum));
  auto env = reader.environment();
  if (env.ok()) {
    std::printf("  environment      %zu core roots, %zu exclusive roots, "
                "%zu AIA entries\n",
                env.value().core_roots.size(),
                env.value().exclusive_roots.size(),
                env.value().aia_entries.size());
  }
  return 0;
}
