// CA / reseller issuance pipelines (paper §4.2, Tables 6 & 11).
//
// Each model captures how one CA or reseller packages an issued
// certificate for its customers: whether it hands out a ready-to-deploy
// fullchain file, how it orders the ca-bundle (GoGetSSL, cyber_Folks and
// Trustico ship it *reversed* — the root cause the paper traced for half
// of all reversed-sequence chains), whether the root is included, and
// how much installation guidance the customer gets. The naive-admin
// simulation then shows how those packaging choices turn into the
// non-compliant deployments of Table 11.
#pragma once

#include <string>
#include <vector>

#include "ca/hierarchy.hpp"
#include "x509/certificate.hpp"

namespace chainchaos::ca {

enum class CaKind {
  kLetsEncrypt,
  kDigicert,
  kSectigo,
  kZeroSsl,
  kGoGetSsl,
  kTaiwanCa,
  kCyberFolks,
  kTrustico,
};

const char* to_string(CaKind kind);

/// How much deployment guidance the CA ships (Table 6 last row).
enum class InstallationGuide { kNone, kApacheIisOnly, kAllServers };

/// Static characteristics row (regenerates Table 6).
struct CaCharacteristics {
  bool automatic_certificate_management = false;  ///< ACME-style
  bool provides_fullchain_file = false;
  bool provides_ca_bundle_file = false;
  bool provides_root_certificate = false;
  bool bundle_in_compliant_order = true;  ///< false: reversed ca-bundle
  bool omits_required_intermediate = false;  ///< the TAIWAN-CA defect
  InstallationGuide guide = InstallationGuide::kNone;
};

/// What the customer downloads after issuance.
struct IssuedPackage {
  std::string ca_name;
  x509::CertPtr leaf;
  std::vector<x509::CertPtr> certificate_file;  ///< leaf-only file
  std::vector<x509::CertPtr> fullchain_file;    ///< empty if not provided
  std::vector<x509::CertPtr> ca_bundle_file;    ///< empty if not provided
};

class CaModel {
 public:
  /// `hierarchy` supplies the actual signing infrastructure; the model
  /// only decides packaging.
  CaModel(CaKind kind, const CaHierarchy* hierarchy);

  CaKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const CaCharacteristics& characteristics() const { return traits_; }
  const CaHierarchy& hierarchy() const { return *hierarchy_; }

  /// Issues for `domain` and packages the files per the CA's habits.
  IssuedPackage issue(const std::string& domain) const;

  /// The deployment a *naive* administrator produces from the package:
  /// with a fullchain file they deploy it verbatim (compliant); with
  /// leaf + ca-bundle they concatenate the two files untouched — which
  /// inherits the bundle's (possibly reversed) order.
  std::vector<x509::CertPtr> naive_admin_deployment(
      const IssuedPackage& package) const;

 private:
  CaKind kind_;
  std::string name_;
  CaCharacteristics traits_;
  const CaHierarchy* hierarchy_;
};

/// Builds characteristics for a kind (shared by CaModel and the bench).
CaCharacteristics characteristics_for(CaKind kind);

}  // namespace chainchaos::ca
