// Tests for src/obs/ (DESIGN.md §5.11): span nesting/parenting
// invariants, ordering-independent profile aggregation, the pinned
// quantile interpolation math, Prometheus writer + exposition checker,
// chrome trace export, and the service integration — x-trace-id
// round-trips (including the cache-hit path), the queue-wait histogram,
// and GET /v1/metrics passing the checker.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/histogram.hpp"
#include "obs/prometheus.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/metrics.hpp"
#include "service/server.hpp"
#include "x509/builder.hpp"

namespace chainchaos {
namespace {

// ---------------------------------------------------------------------------
// Tracer span invariants
// ---------------------------------------------------------------------------

/// The tracer is process-global; every test runs against a clean,
/// enabled tracer and leaves it off (the suite's other tests must not
/// see stray spans).
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef CHAINCHAOS_OBS_DISABLED
    GTEST_SKIP() << "CHAINCHAOS_SPAN compiles to NoopSpan under "
                    "-DCHAINCHAOS_OBS=OFF; span-recording tests only "
                    "apply to the instrumented build";
#endif
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().reset();
    obs::Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().reset();
  }
};

TEST_F(TracerTest, NestedSpansLinkParentsAndNest) {
  {
    const obs::TraceContext ctx(obs::trace_id_from_string("req-1"));
    CHAINCHAOS_SPAN(obs::Stage::kChainAnalyze);  // slot 0
    {
      CHAINCHAOS_SPAN(obs::Stage::kChainOrder);  // slot 1
      {
        CHAINCHAOS_SPAN(obs::Stage::kChainCompleteness);  // slot 2
      }
    }
  }
  CHAINCHAOS_SPAN(obs::Stage::kLintChainRules);  // slot 3, closes at scope end

  const auto spans = obs::Tracer::instance().collect();
  ASSERT_EQ(spans.size(), 3u);  // slot 3 still open -> not collected

  EXPECT_EQ(spans[0].stage, obs::Stage::kChainAnalyze);
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].stage, obs::Stage::kChainOrder);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].stage, obs::Stage::kChainCompleteness);
  EXPECT_EQ(spans[2].parent, 1);

  // Temporal containment: a child starts no earlier and ends no later
  // than its parent.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_GE(spans[2].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[2].end_ns, spans[1].end_ns);

  // All three ran under the TraceContext and share its id.
  const std::uint64_t id = obs::trace_id_from_string("req-1");
  for (const obs::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, id);
    EXPECT_EQ(span.thread_id, spans[0].thread_id);
  }
}

TEST_F(TracerTest, SiblingSpansShareParent) {
  {
    CHAINCHAOS_SPAN(obs::Stage::kPathBuild);  // slot 0
    { CHAINCHAOS_SPAN(obs::Stage::kPathStep); }
    { CHAINCHAOS_SPAN(obs::Stage::kPathStep); }
  }
  const auto spans = obs::Tracer::instance().collect();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 0);
  // Siblings do not overlap.
  EXPECT_LE(spans[1].end_ns, spans[2].start_ns);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer::instance().set_enabled(false);
  {
    obs::ScopedSpan span(obs::Stage::kX509Parse);
    EXPECT_FALSE(span.active());
  }
  { CHAINCHAOS_SPAN(obs::Stage::kChainAnalyze); }
  const obs::TraceContext ctx(12345);  // must also be inert

  EXPECT_TRUE(obs::Tracer::instance().collect().empty());
  const obs::StageStatsSnapshot stats = obs::Tracer::instance().stage_stats();
  for (const obs::StageStats& stage : stats) {
    EXPECT_EQ(stage.count, 0u);
    EXPECT_EQ(stage.total_ns, 0u);
  }
}

TEST_F(TracerTest, NoopSpanIsInert) {
  // NoopSpan is what CHAINCHAOS_SPAN compiles to under
  // -DCHAINCHAOS_OBS=OFF; it must never record regardless of runtime
  // state.
  obs::NoopSpan span(obs::Stage::kX509Parse);
  EXPECT_FALSE(span.active());
  EXPECT_TRUE(obs::Tracer::instance().collect().empty());
}

TEST_F(TracerTest, SpansFeedStageHistograms) {
  { CHAINCHAOS_SPAN(obs::Stage::kLintCertRules); }
  { CHAINCHAOS_SPAN(obs::Stage::kLintCertRules); }
  const obs::StageStatsSnapshot stats = obs::Tracer::instance().stage_stats();
  const obs::StageStats& cell =
      stats[static_cast<std::size_t>(obs::Stage::kLintCertRules)];
  EXPECT_EQ(cell.count, 2u);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : cell.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, 2u);
}

TEST_F(TracerTest, TraceContextNestsAndRestores) {
  const std::uint64_t outer = obs::trace_id_from_string("outer");
  const std::uint64_t inner = obs::trace_id_from_string("inner");
  {
    const obs::TraceContext outer_ctx(outer);
    { CHAINCHAOS_SPAN(obs::Stage::kChainOrder); }
    {
      const obs::TraceContext inner_ctx(inner);
      { CHAINCHAOS_SPAN(obs::Stage::kChainOrder); }
    }
    { CHAINCHAOS_SPAN(obs::Stage::kChainOrder); }
  }
  const auto spans = obs::Tracer::instance().collect();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].trace_id, outer);
  EXPECT_EQ(spans[1].trace_id, inner);
  EXPECT_EQ(spans[2].trace_id, outer);  // restored after inner scope
}

// ---------------------------------------------------------------------------
// Ordering-independent aggregation
// ---------------------------------------------------------------------------

obs::SpanRecord make_span(obs::Stage stage, std::uint64_t start_ns,
                          std::uint64_t duration_ns, std::uint32_t tid) {
  obs::SpanRecord span;
  span.stage = stage;
  span.start_ns = start_ns;
  span.end_ns = start_ns + duration_ns;
  span.thread_id = tid;
  return span;
}

/// The same 120 spans, assigned to thread ids by `threads`-way
/// round-robin. Durations are a fixed pseudo-pattern so quantiles are
/// non-trivial.
std::vector<obs::SpanRecord> partitioned_spans(unsigned threads) {
  std::vector<obs::SpanRecord> spans;
  for (std::uint32_t i = 0; i < 120; ++i) {
    const obs::Stage stage =
        i % 3 == 0 ? obs::Stage::kX509Parse
                   : (i % 3 == 1 ? obs::Stage::kChainAnalyze
                                 : obs::Stage::kPathBuild);
    spans.push_back(make_span(stage, 1000 * i, 500 + (i * 7919) % 9000,
                              i % threads));
  }
  return spans;
}

TEST(ObsExportTest, ProfileIsByteIdenticalAcrossThreadPartitioning) {
  const std::vector<obs::SpanRecord> one = partitioned_spans(1);
  std::vector<obs::SpanRecord> eight = partitioned_spans(8);

  // Collectors see buffers in registration order; emulate a different
  // observation order entirely.
  std::reverse(eight.begin(), eight.end());

  const auto profile_one = obs::aggregate_profile(one);
  const auto profile_eight = obs::aggregate_profile(eight);
  ASSERT_EQ(profile_one.size(), profile_eight.size());
  for (std::size_t i = 0; i < profile_one.size(); ++i) {
    EXPECT_EQ(profile_one[i].stage, profile_eight[i].stage);
    EXPECT_EQ(profile_one[i].count, profile_eight[i].count);
    EXPECT_EQ(profile_one[i].total_ns, profile_eight[i].total_ns);
    EXPECT_EQ(profile_one[i].p50_ns, profile_eight[i].p50_ns);
    EXPECT_EQ(profile_one[i].p99_ns, profile_eight[i].p99_ns);
    EXPECT_EQ(profile_one[i].max_ns, profile_eight[i].max_ns);
  }

  // The rendered table — what chainprof prints — must be byte-identical
  // too (1-thread vs 8-thread partitioning of the same work).
  EXPECT_EQ(obs::profile_table(profile_one, 1'000'000, 4),
            obs::profile_table(profile_eight, 1'000'000, 4));
}

TEST(ObsExportTest, ProfileOrdersByTotalDescending) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back(make_span(obs::Stage::kX509Parse, 0, 100, 0));
  spans.push_back(make_span(obs::Stage::kChainAnalyze, 0, 5000, 0));
  spans.push_back(make_span(obs::Stage::kPathBuild, 0, 300, 0));
  const auto profile = obs::aggregate_profile(spans);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0].stage, obs::Stage::kChainAnalyze);
  EXPECT_EQ(profile[1].stage, obs::Stage::kPathBuild);
  EXPECT_EQ(profile[2].stage, obs::Stage::kX509Parse);
}

TEST(ObsExportTest, ChromeTraceJsonShape) {
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord parent = make_span(obs::Stage::kChainAnalyze, 1000, 9000, 2);
  parent.trace_id = 0xabcdef;
  spans.push_back(parent);
  obs::SpanRecord child = make_span(obs::Stage::kChainOrder, 2000, 1000, 2);
  child.parent = 0;
  spans.push_back(child);

  const std::string json = obs::chrome_trace_json(spans, 7);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"chain.analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"chain.order\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("0000000000abcdef"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":\"7\""), std::string::npos);
  // Microsecond conversion: start 1000ns -> ts 1.000, duration 9000ns
  // -> dur 9.000.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":9.000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Quantile interpolation (pinned math)
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, QuantilePinnedValues) {
  const std::uint64_t bounds[2] = {100, 200};

  {  // empty histogram -> 0
    const std::uint64_t counts[3] = {0, 0, 0};
    EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(counts, 3, bounds, 0.5), 0.0);
  }
  {  // first bucket interpolates from lower bound 0
    const std::uint64_t counts[3] = {4, 0, 0};
    // rank = 0.5 * 4 = 2; fraction 2/4 of [0, 100] -> 50
    EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(counts, 3, bounds, 0.5), 50.0);
    // rank = 0.1 * 4 = 0.4; fraction 0.4/4 -> 10
    EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(counts, 3, bounds, 0.1), 10.0);
  }
  {  // interpolation inside a later bucket
    const std::uint64_t counts[3] = {2, 2, 0};
    // rank = 0.75 * 4 = 3; bucket 1 holds ranks (2, 4]; fraction
    // (3-2)/2 of [100, 200] -> 150
    EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(counts, 3, bounds, 0.75),
                     150.0);
  }
  {  // a rank landing in +Inf clamps to the largest finite bound
    const std::uint64_t counts[3] = {1, 0, 3};
    EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(counts, 3, bounds, 1.0),
                     200.0);
  }
  {  // q clamped into [0, 1]
    const std::uint64_t counts[3] = {4, 0, 0};
    EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(counts, 3, bounds, -1.0), 0.0);
  }
}

TEST(ObsHistogramTest, DurationBucketBoundaries) {
  EXPECT_EQ(obs::duration_bucket(0), 0u);
  EXPECT_EQ(obs::duration_bucket(1000), 0u);     // inclusive upper bound
  EXPECT_EQ(obs::duration_bucket(1001), 1u);
  EXPECT_EQ(obs::duration_bucket(~0ULL),
            obs::kDurationBucketUpperNs.size());  // +Inf bucket
}

// ---------------------------------------------------------------------------
// Prometheus writer + exposition checker
// ---------------------------------------------------------------------------

TEST(PromTest, WriterOutputPassesChecker) {
  obs::PromWriter w;
  w.family("demo_requests_total", "Demo requests", "counter");
  w.sample("demo_requests_total", {{"endpoint", "analyze"}},
           std::uint64_t{42});
  w.sample("demo_requests_total", {{"endpoint", "lint"}}, std::uint64_t{7});

  const std::uint64_t counts[3] = {5, 3, 2};
  const std::uint64_t bounds[2] = {1000, 10000};
  w.histogram("demo_duration_seconds", "Demo durations", {}, counts, 3,
              bounds, 1e6, 12345);

  const std::string text = w.take();
  const auto checked = obs::check_exposition(text);
  ASSERT_TRUE(checked.ok()) << checked.error().to_string() << "\n" << text;
  // 2 counter samples + 3 buckets + _sum + _count.
  EXPECT_EQ(checked.value(), 7u);

  // Cumulative buckets: 5, 8, 10; +Inf equals _count.
  EXPECT_NE(text.find("le=\"+Inf\"} 10"), std::string::npos);
  EXPECT_NE(text.find("demo_duration_seconds_count 10"), std::string::npos);
  // µs -> seconds: bound 1000µs renders as 0.001.
  EXPECT_NE(text.find("le=\"0.001\""), std::string::npos);
}

TEST(PromTest, CheckerRejectsMalformedDocuments) {
  // Sample before its TYPE.
  EXPECT_FALSE(obs::check_exposition("foo 1\n# TYPE foo counter\n").ok());
  // Duplicate TYPE.
  EXPECT_FALSE(obs::check_exposition("# TYPE foo counter\nfoo 1\n"
                                     "# TYPE foo counter\nfoo 2\n")
                   .ok());
  // Invalid metric name.
  EXPECT_FALSE(
      obs::check_exposition("# TYPE 9bad counter\n9bad 1\n").ok());
  // Non-numeric value.
  EXPECT_FALSE(
      obs::check_exposition("# TYPE foo counter\nfoo banana\n").ok());
  // Missing trailing newline.
  EXPECT_FALSE(obs::check_exposition("# TYPE foo counter\nfoo 1").ok());
  // Histogram without +Inf bucket / _count.
  EXPECT_FALSE(obs::check_exposition("# TYPE h histogram\n"
                                     "h_bucket{le=\"1\"} 1\nh_sum 1\n")
                   .ok());
  // Histogram with decreasing cumulative buckets.
  EXPECT_FALSE(obs::check_exposition("# TYPE h histogram\n"
                                     "h_bucket{le=\"1\"} 5\n"
                                     "h_bucket{le=\"2\"} 3\n"
                                     "h_bucket{le=\"+Inf\"} 5\n"
                                     "h_sum 1\nh_count 5\n")
                   .ok());
  // Empty document.
  EXPECT_FALSE(obs::check_exposition("").ok());
}

TEST(PromTest, StageMetricsRenderAndValidate) {
  obs::StageStatsSnapshot snapshot{};
  auto& cell = snapshot[static_cast<std::size_t>(obs::Stage::kX509Parse)];
  cell.count = 3;
  cell.total_ns = 6000;
  cell.buckets[0] = 3;

  const std::string text = obs::render_stage_metrics(snapshot);
  EXPECT_NE(text.find("chainchaos_stage_duration_seconds_x509_parse"),
            std::string::npos);
  const auto checked = obs::check_exposition(text);
  ASSERT_TRUE(checked.ok()) << checked.error().to_string();
  // Zero-count stages are skipped: exactly one histogram family.
  EXPECT_EQ(checked.value(), obs::kDurationBucketCount + 2);
}

// ---------------------------------------------------------------------------
// service::Metrics: queue wait + quantiles + Prometheus
// ---------------------------------------------------------------------------

TEST(ServiceMetricsObsTest, QueueWaitIsSeparateFromHandlerTime) {
  service::Metrics metrics;
  metrics.record_response(200, 100);     // handler: 100µs
  metrics.record_queue_wait(900000);     // queue: 900ms (backpressure)

  const std::string json = metrics.to_json(service::CacheStats{});
  // Both histograms present and independent.
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_us\""), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":100"), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":900000"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

TEST(ServiceMetricsObsTest, ToPrometheusPassesChecker) {
  service::Metrics metrics;
  metrics.record_request(service::Endpoint::kAnalyze);
  metrics.record_request(service::Endpoint::kMetrics);
  metrics.record_response(200, 150);
  metrics.record_response(404, 20);
  metrics.record_queue_wait(42);
  metrics.note_queue_depth(3);

  const std::string text = metrics.to_prometheus(service::CacheStats{});
  const auto checked = obs::check_exposition(text);
  ASSERT_TRUE(checked.ok()) << checked.error().to_string() << "\n" << text;
  EXPECT_NE(text.find("chainchaos_request_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("chainchaos_queue_wait_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("chainchaos_queue_high_water 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live service integration: x-trace-id round trip, /v1/metrics
// ---------------------------------------------------------------------------

std::string demo_chain_pem() {
  using x509::CertificateBuilder;
  const x509::SigningIdentity root_id =
      x509::make_identity(asn1::Name::make("Obs Test Root"));
  const x509::SigningIdentity inter_id =
      x509::make_identity(asn1::Name::make("Obs Test Inter"));
  CertificateBuilder rb;
  rb.subject(root_id.name).as_ca().public_key(root_id.keys.pub);
  const x509::CertPtr root = rb.self_sign(root_id.keys);
  CertificateBuilder ib;
  ib.subject(inter_id.name).as_ca().public_key(inter_id.keys.pub);
  const x509::CertPtr inter = ib.sign(root_id);
  CertificateBuilder lb;
  lb.as_leaf("obs.example");
  const x509::CertPtr leaf = lb.sign(inter_id);
  return x509::to_pem(*leaf) + x509::to_pem(*inter) + x509::to_pem(*root);
}

TEST(ServiceObsTest, TraceIdRoundTripsIncludingCacheHit) {
  service::ServerConfig config;
  config.workers = 2;
  service::Server server(config);
  auto port = server.start();
  ASSERT_TRUE(port.ok());

  service::Client client(port.value());
  const std::string pem = demo_chain_pem();

  // The client attaches a deterministic per-request id ("c<port>-<seq>")
  // and the server echoes it.
  auto first = client.analyze(pem, "obs.example");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().status, 200);
  const std::string expected_1 =
      "c" + std::to_string(port.value()) + "-1";
  ASSERT_NE(first.value().headers.find("x-trace-id"),
            first.value().headers.end());
  EXPECT_EQ(first.value().headers.at("x-trace-id"), expected_1);
  EXPECT_EQ(first.value().headers.at("x-cache"), "miss");

  // Same chain again: served from cache — the echo must survive the
  // cache-hit path too, with the *new* request's id.
  auto second = client.analyze(pem, "obs.example");
  ASSERT_TRUE(second.ok());
  const std::string expected_2 =
      "c" + std::to_string(port.value()) + "-2";
  ASSERT_NE(second.value().headers.find("x-trace-id"),
            second.value().headers.end());
  EXPECT_EQ(second.value().headers.at("x-trace-id"), expected_2);
  EXPECT_EQ(second.value().headers.at("x-cache"), "hit");

  // A caller-chosen id wins over the generated one.
  net::HttpRequest req;
  req.method = "GET";
  req.target = "/healthz";
  req.headers["x-trace-id"] = "my-own-trace";
  auto custom = client.request(std::move(req));
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom.value().headers.at("x-trace-id"), "my-own-trace");

  // /v1/stats reports the queue-wait histogram populated by the above.
  auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  const std::string json = to_string(stats.value().body);
  EXPECT_NE(json.find("\"queue_wait_us\""), std::string::npos);

  server.stop();
}

TEST(ServiceObsTest, MetricsEndpointPassesExpositionCheck) {
  service::ServerConfig config;
  config.workers = 2;
  service::Server server(config);
  auto port = server.start();
  ASSERT_TRUE(port.ok());

  service::Client client(port.value());
  ASSERT_TRUE(client.analyze(demo_chain_pem(), "obs.example").ok());

  auto metrics = client.metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().headers.at("content-type").find("text/plain"),
            std::string::npos);
  const std::string text = to_string(metrics.value().body);
  const auto checked = obs::check_exposition(text);
  ASSERT_TRUE(checked.ok()) << checked.error().to_string();
  EXPECT_NE(text.find("chainchaos_requests_total{endpoint=\"analyze\"} 1"),
            std::string::npos);

  // /v1/trace answers valid (possibly empty) chrome trace JSON.
  auto trace = client.trace();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().status, 200);
  EXPECT_NE(to_string(trace.value().body).find("\"traceEvents\""),
            std::string::npos);

  server.stop();
}

// ---------------------------------------------------------------------------
// chainwatch: event log, time-series ring, flight recorder (§5.16)
// ---------------------------------------------------------------------------

/// The event log is process-global, like the tracer: every test starts
/// from a clean, enabled log and leaves it off.
class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EventLog::instance().reset();
    obs::EventLog::instance().set_enabled(true);
  }
  void TearDown() override { obs::EventLog::instance().reset(); }
};

TEST_F(EventLogTest, RingWrapsKeepingNewest) {
  obs::EventLog& log = obs::EventLog::instance();
  log.set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    log.emit(obs::EventLevel::kInfo, "test.tick", "detail",
             static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(log.emitted(), 20u);

  const std::vector<obs::EventRecord> events = log.collect(8);
  ASSERT_EQ(events.size(), 8u);
  // Newest window, oldest first: seq 12..19, values matching.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].value, 12 + i);
    EXPECT_STREQ(events[i].kind, "test.tick");
  }
  // Asking for more than capacity returns what the ring still holds.
  EXPECT_EQ(log.collect(100).size(), 8u);
}

TEST_F(EventLogTest, TruncatesOversizeKindAndDetail) {
  obs::EventLog& log = obs::EventLog::instance();
  const std::string long_kind(100, 'k');
  const std::string long_detail(300, 'd');
  log.emit(obs::EventLevel::kWarn, long_kind, long_detail);
  const auto events = log.collect(1);
  ASSERT_EQ(events.size(), 1u);
  // Truncated to the fixed field sizes, still NUL-terminated.
  EXPECT_EQ(std::string(events[0].kind).size(), sizeof events[0].kind - 1);
  EXPECT_EQ(std::string(events[0].detail).size(),
            sizeof events[0].detail - 1);
}

TEST_F(EventLogTest, RateLimiterCapsSinkNotRing) {
  obs::EventLog& log = obs::EventLog::instance();
  const std::string path =
      ::testing::TempDir() + "event_log_rate_limit.jsonl";
  ASSERT_TRUE(log.open_sink(path, /*max_lines_per_sec=*/5));
  for (int i = 0; i < 50; ++i) {
    log.emit(obs::EventLevel::kInfo, "test.burst", {});
  }
  // Every event landed in the ring; the sink saw at most 5 lines per
  // wall-clock second (the burst spans at most two windows).
  EXPECT_EQ(log.emitted(), 50u);
  EXPECT_LE(log.sink_written(), 10u);
  EXPECT_GE(log.sink_written(), 1u);
  EXPECT_EQ(log.sink_written() + log.sink_suppressed(), 50u);
  log.close_sink();

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.find("{\"seq\":"), 0u) << line;
    ++lines;
  }
  EXPECT_EQ(lines, log.sink_written());
  std::remove(path.c_str());
}

TEST_F(EventLogTest, JsonlOmitsZeroFieldsAndEscapes) {
  obs::EventRecord r;
  r.seq = 7;
  r.t_ns = 123;
  r.level = obs::EventLevel::kError;
  std::snprintf(r.kind, sizeof r.kind, "conn.evict");
  std::snprintf(r.detail, sizeof r.detail, "say \"hi\"");
  r.value = 42;
  const std::string line = obs::to_jsonl(r);
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(line.find("\"value\":42"), std::string::npos);
  EXPECT_NE(line.find("say \\\"hi\\\""), std::string::npos);
  // conn/trace are zero -> omitted.
  EXPECT_EQ(line.find("\"conn\""), std::string::npos);
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);
}

TEST_F(EventLogTest, RenderEventMetricsPassesChecker) {
  obs::EventLog& log = obs::EventLog::instance();
  log.emit(obs::EventLevel::kInfo, "test.metric", {});
  const std::string text = obs::render_event_metrics();
  const auto checked = obs::check_exposition(text);
  ASSERT_TRUE(checked.ok()) << checked.error().to_string() << "\n" << text;
  EXPECT_NE(text.find("chainchaos_events_emitted_total 1"),
            std::string::npos);
}

TEST(TimeSeriesRingTest, WraparoundKeepsNewestWindowInOrder) {
  obs::TimeSeriesRing ring({"a", "b"}, /*window=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push(/*uptime_ms=*/i * 1000, {i, i * 2});
  }
  EXPECT_EQ(ring.pushed(), 10u);

  const auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // Newest 4, oldest first: seq 6..9.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, 6 + i);
    EXPECT_EQ(samples[i].uptime_ms, (6 + i) * 1000);
    ASSERT_EQ(samples[i].values.size(), 2u);
    EXPECT_EQ(samples[i].values[0], 6 + i);
    EXPECT_EQ(samples[i].values[1], (6 + i) * 2);
  }
}

TEST(TimeSeriesRingTest, ToJsonIsFlatAndParseable) {
  obs::TimeSeriesRing ring({"requests_total"}, 8);
  ring.push(1000, {5});
  ring.push(2000, {9});
  const std::string json = ring.to_json();
  EXPECT_NE(json.find("\"window\":8"), std::string::npos);
  EXPECT_NE(json.find("\"pushed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"columns\":[\"requests_total\"]"),
            std::string::npos);
  EXPECT_NE(json.find("{\"seq\":0,\"uptime_ms\":1000,\"requests_total\":5}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"seq\":1,\"uptime_ms\":2000,\"requests_total\":9}"),
            std::string::npos);
}

TEST(TimeSeriesRingTest, ShortRowsArePaddedWithZeroes) {
  obs::TimeSeriesRing ring({"a", "b", "c"}, 4);
  ring.push(1, {7});  // fewer values than columns
  const auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  ASSERT_EQ(samples[0].values.size(), 3u);
  EXPECT_EQ(samples[0].values[0], 7u);
  EXPECT_EQ(samples[0].values[1], 0u);
  EXPECT_EQ(samples[0].values[2], 0u);
}

TEST(ServiceMetricsObsTest, SnapshotIsCoherentAndUptimeMonotone) {
  service::Metrics metrics;
  metrics.record_request(service::Endpoint::kAnalyze);
  metrics.record_response(200, 150);
  metrics.record_loop_tick(40);
  metrics.record_poll_batch(3);

  const service::MetricsSnapshot first = metrics.snapshot();
  EXPECT_EQ(first.requests_total, 1u);
  EXPECT_EQ(first.responses_2xx, 1u);
  EXPECT_EQ(first.loop_ticks, 1u);
  EXPECT_GE(first.uptime_seconds, 0.0);

  metrics.record_loop_tick(80);
  const service::MetricsSnapshot second = metrics.snapshot();
  EXPECT_GE(second.uptime_seconds, first.uptime_seconds);

  // Loop-tick histogram monotonicity: every bucket is non-decreasing
  // between snapshots and the bucket sum always equals loop_ticks.
  std::uint64_t sum1 = 0, sum2 = 0;
  for (std::size_t b = 0; b < service::kLatencyBucketCount; ++b) {
    EXPECT_GE(second.loop_tick[b], first.loop_tick[b]);
    sum1 += first.loop_tick[b];
    sum2 += second.loop_tick[b];
  }
  EXPECT_EQ(sum1, first.loop_ticks);
  EXPECT_EQ(sum2, second.loop_ticks);
  EXPECT_GE(second.loop_tick_total_us, first.loop_tick_total_us);
}

TEST(ServiceMetricsObsTest, TimeseriesRowMatchesColumns) {
  service::Metrics metrics;
  metrics.record_request(service::Endpoint::kAnalyze);
  metrics.record_response(200, 150);
  const auto columns = service::timeseries_columns();
  const auto row = service::timeseries_row(
      metrics.snapshot(), service::CacheStats{}, net::FetchStats{},
      crypto::VerifySnapshot{});
  ASSERT_EQ(columns.size(), row.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == "requests_total") EXPECT_EQ(row[i], 1u);
    if (columns[i] == "responses_2xx") EXPECT_EQ(row[i], 1u);
    if (columns[i] == "latency_total_us") EXPECT_EQ(row[i], 150u);
  }
}

TEST(FlightRecorderTest, DumpOnForkedCrashingChild) {
  const std::string path = ::testing::TempDir() + "flight_crash.jsonl";
  std::remove(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the recorder, emit what a dying daemon would have in
    // its ring, and die by SIGSEGV. _exit codes signal setup failures.
    obs::EventLog::instance().reset();
    obs::EventLog::instance().set_enabled(true);
    obs::EventLog::instance().emit(obs::EventLevel::kInfo, "request",
                                   "POST /v1/analyze", 0, 42, 7);
    obs::EventLog::instance().emit(obs::EventLevel::kWarn, "crash.watch",
                                   "about to die");
    if (!obs::flight::set_dump_path(path.c_str())) ::_exit(97);
    obs::flight::install_signal_handlers();
    ::raise(SIGSEGV);
    ::_exit(98);  // unreachable: the handler re-raises with SIG_DFL
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with "
                                   << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("{\"flight\":1,\"signal\":11}"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"request\""), std::string::npos);
  EXPECT_NE(dump.find("POST /v1/analyze"), std::string::npos);
  EXPECT_NE(dump.find("\"conn\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"flight_end\""), std::string::npos);
  // JSONL: every line is one object.
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DumpNowWritesEventsAndSpans) {
  obs::EventLog::instance().reset();
  obs::EventLog::instance().set_enabled(true);
  obs::EventLog::instance().emit(obs::EventLevel::kInfo, "test.dump", "now");
#ifndef CHAINCHAOS_OBS_DISABLED
  obs::Tracer::instance().set_enabled(true);
  { CHAINCHAOS_SPAN(obs::Stage::kX509Parse); }
#endif

  const std::string path = ::testing::TempDir() + "flight_demand.jsonl";
  ASSERT_TRUE(obs::flight::set_dump_path(path.c_str()));
  ASSERT_TRUE(obs::flight::dump_now());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("{\"flight\":1,\"signal\":0}"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"test.dump\""), std::string::npos);
#ifndef CHAINCHAOS_OBS_DISABLED
  EXPECT_NE(dump.find("\"s\":{"), std::string::npos);
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().reset();
#endif
  obs::EventLog::instance().reset();
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, RejectsOversizePath) {
  EXPECT_FALSE(obs::flight::set_dump_path(""));
  EXPECT_FALSE(obs::flight::set_dump_path(std::string(300, 'x').c_str()));
  EXPECT_TRUE(obs::flight::set_dump_path("/tmp/ok.jsonl"));
}

}  // namespace
}  // namespace chainchaos
