#include "net/aia_repository.hpp"

#include "net/http.hpp"

namespace chainchaos::net {

void AiaRepository::publish(const std::string& uri, x509::CertPtr cert) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[uri] = Entry{std::move(cert), false};
}

void AiaRepository::mark_unreachable(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[uri].unreachable = true;
}

Result<x509::CertPtr> AiaRepository::fetch(const std::string& uri) {
  // One lock for the whole round-trip keeps the entry lookup and the
  // counters consistent; fetches are rare (incomplete chains only), so
  // the serialization is invisible next to the signature-check work the
  // engine's threads spend their time on.
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.attempts;
  stats_.simulated_latency_ms += latency_ms_;

  // The fetch round-trips real HTTP framing: the "client" side encodes a
  // GET and parses whatever comes back; the "origin" side parses the
  // request and serves the DER blob. Mirrors what production AIA
  // chasing does (and why the paper flags its plain-HTTP privacy and
  // MitM exposure).
  auto url = parse_url(uri);
  if (!url.ok()) {
    ++stats_.misses;
    return url.error();
  }
  HttpRequest request;
  request.target = url.value().path;
  request.host = url.value().host;
  request.headers["accept"] = "application/pkix-cert";
  const std::string wire_request = request.encode();

  // --- origin side ---
  auto parsed_request = parse_request(wire_request);
  if (!parsed_request.ok()) {
    ++stats_.misses;
    return parsed_request.error();
  }
  const auto it = entries_.find(uri);
  if (it != entries_.end() && it->second.unreachable) {
    // Connection-level failure: no HTTP response at all.
    ++stats_.unreachable;
    return make_error("aia.unreachable", uri);
  }
  const Bytes wire_response =
      (it == entries_.end() || !it->second.cert)
          ? http_not_found().encode()
          : http_ok(it->second.cert->der, "application/pkix-cert").encode();

  // --- client side ---
  auto response = parse_response(wire_response);
  if (!response.ok()) {
    ++stats_.misses;
    return response.error();
  }
  if (response.value().status != 200) {
    ++stats_.misses;
    return make_error("aia.not_found", uri);
  }
  auto cert = x509::parse_certificate(response.value().body);
  if (!cert.ok()) {
    ++stats_.misses;
    return cert.error();
  }
  ++stats_.hits;
  stats_.bytes_served += response.value().body.size();
  return std::move(cert).value();
}

bool AiaRepository::reachable(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(uri);
  return it != entries_.end() && !it->second.unreachable && it->second.cert;
}

FetchStats AiaRepository::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AiaRepository::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.reset();
}

std::size_t AiaRepository::published_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace chainchaos::net
