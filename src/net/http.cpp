#include "net/http.hpp"

#include "support/str.hpp"

namespace chainchaos::net {

Result<Url> parse_url(const std::string& url) {
  constexpr std::string_view kScheme = "http://";
  if (!starts_with(url, kScheme)) {
    return make_error("http.bad_scheme", url);
  }
  const std::string rest = url.substr(kScheme.size());
  const std::size_t slash = rest.find('/');
  Url out;
  if (slash == std::string::npos) {
    out.host = rest;
    out.path = "/";
  } else {
    out.host = rest.substr(0, slash);
    out.path = rest.substr(slash);
  }
  if (out.host.empty()) return make_error("http.bad_host", url);
  return out;
}

std::string HttpRequest::encode() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "host: " + host + "\r\n";
  for (const auto& [name, value] : headers) {
    if (name == "host" || name == "content-length") continue;
    out += name + ": " + value + "\r\n";
  }
  if (!body.empty()) {
    out += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out.append(reinterpret_cast<const char*>(body.data()), body.size());
  return out;
}

namespace {

/// Splits "name: value" and lower-cases the name.
bool parse_header_line(const std::string& line, std::string* name,
                       std::string* value) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos) return false;
  *name = to_lower(line.substr(0, colon));
  std::size_t start = colon + 1;
  while (start < line.size() && line[start] == ' ') ++start;
  std::size_t end = line.size();
  while (end > start && (line[end - 1] == ' ' || line[end - 1] == '\t')) --end;
  *value = line.substr(start, end - start);
  return true;
}

/// Strict Content-Length grammar: one or more ASCII digits, nothing
/// else. In particular "-1", "+5", "  5", hex, and values that overflow
/// 64 bits (or exceed kMaxBodyBytes) are all rejected — std::stoull
/// would happily wrap a negative value to 2^64-1.
Result<std::size_t> parse_content_length(const std::string& value) {
  if (value.empty() || value.size() > 20) {
    return make_error("http.bad_content_length", value);
  }
  std::uint64_t n = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return make_error("http.bad_content_length", value);
    }
    if (n > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return make_error("http.bad_content_length", "overflow: " + value);
    }
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (n > kMaxBodyBytes) {
    return make_error("http.body_too_large", value);
  }
  return static_cast<std::size_t>(n);
}

/// Parses the header section (everything before the blank line) of a
/// request or response into lower-cased name/value pairs, enforcing the
/// header-count cap and rejecting duplicate Content-Length headers (a
/// request-smuggling vector). `header_text` excludes the start line.
Result<std::map<std::string, std::string>> parse_header_block(
    const std::string& header_text) {
  std::map<std::string, std::string> headers;
  std::size_t count = 0;
  for (const std::string& raw_line : split(header_text, '\n')) {
    std::string line = raw_line;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (++count > kMaxHeaderCount) {
      return make_error("http.too_many_headers",
                        std::to_string(count) + " > " +
                            std::to_string(kMaxHeaderCount));
    }
    std::string name, value;
    if (!parse_header_line(line, &name, &value)) {
      return make_error("http.bad_header", line);
    }
    if (name == "content-length" && headers.count(name) != 0) {
      return make_error("http.duplicate_content_length", line);
    }
    headers[name] = value;
  }
  return headers;
}

}  // namespace

Result<HttpRequest> parse_request(const std::string& raw) {
  if (raw.empty()) return make_error("http.empty");
  const std::size_t boundary = raw.find("\r\n\r\n");
  if (boundary == std::string::npos) {
    return make_error("http.truncated", "no header terminator");
  }
  if (boundary + 4 > kMaxHeaderBytes) {
    return make_error("http.headers_too_large",
                      std::to_string(boundary + 4) + " bytes");
  }

  const std::size_t line_end = raw.find("\r\n");
  std::string request_line = raw.substr(0, line_end);
  const std::vector<std::string> parts = split(request_line, ' ');
  if (parts.size() != 3 || !starts_with(parts[2], "HTTP/1.")) {
    return make_error("http.bad_request_line", request_line);
  }

  HttpRequest req;
  req.method = parts[0];
  req.target = parts[1];
  const std::string header_text =
      boundary > line_end + 2
          ? raw.substr(line_end + 2, boundary - line_end - 2)
          : std::string();
  auto headers = parse_header_block(header_text);
  if (!headers.ok()) return headers.error();
  req.headers = std::move(headers.value());
  if (auto it = req.headers.find("host"); it != req.headers.end()) {
    req.host = it->second;
    req.headers.erase(it);
  }
  if (req.host.empty()) {
    return make_error("http.missing_host", "HTTP/1.1 requires Host");
  }

  std::size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    auto parsed = parse_content_length(it->second);
    if (!parsed.ok()) return parsed.error();
    content_length = parsed.value();
  }
  const std::size_t body_start = boundary + 4;
  const std::size_t available = raw.size() - body_start;
  if (available < content_length) {
    return make_error("http.truncated", "body shorter than content-length");
  }
  if (available > content_length) {
    return make_error("http.trailing_bytes",
                      std::to_string(available - content_length) +
                          " bytes beyond declared body");
  }
  req.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(body_start),
                  raw.end());
  return req;
}

Result<RequestFrame> probe_request_frame(std::string_view raw) {
  const std::size_t boundary = raw.find("\r\n\r\n");
  if (boundary == std::string_view::npos) {
    if (raw.size() > kMaxHeaderBytes) {
      return make_error("http.headers_too_large",
                        "no terminator within " +
                            std::to_string(kMaxHeaderBytes) + " bytes");
    }
    return RequestFrame{};  // need more bytes
  }
  if (boundary + 4 > kMaxHeaderBytes) {
    return make_error("http.headers_too_large",
                      std::to_string(boundary + 4) + " bytes");
  }

  // Scan the header block for Content-Length only; full validation
  // happens in parse_request once the frame is complete.
  std::size_t content_length = 0;
  std::size_t line_start = raw.find("\r\n") + 2;
  while (line_start < boundary + 2) {
    std::size_t line_end = raw.find("\r\n", line_start);
    if (line_end == std::string_view::npos || line_end > boundary) {
      line_end = boundary;
    }
    const std::string line(raw.substr(line_start, line_end - line_start));
    std::string name, value;
    if (parse_header_line(line, &name, &value) && name == "content-length") {
      auto parsed = parse_content_length(value);
      if (!parsed.ok()) return parsed.error();
      content_length = parsed.value();
    }
    line_start = line_end + 2;
  }

  RequestFrame frame;
  frame.total_bytes = boundary + 4 + content_length;
  frame.complete = raw.size() >= frame.total_bytes;
  return frame;
}

Result<ResponseFrame> probe_response_frame(std::string_view raw) {
  const std::size_t boundary = raw.find("\r\n\r\n");
  if (boundary == std::string_view::npos) {
    if (raw.size() > kMaxHeaderBytes) {
      return make_error("http.headers_too_large",
                        "no terminator within " +
                            std::to_string(kMaxHeaderBytes) + " bytes");
    }
    return ResponseFrame{};  // need more bytes
  }
  if (boundary + 4 > kMaxHeaderBytes) {
    return make_error("http.headers_too_large",
                      std::to_string(boundary + 4) + " bytes");
  }
  const std::size_t line_end = raw.find("\r\n");
  if (!starts_with(raw.substr(0, line_end), "HTTP/1.")) {
    return make_error("http.bad_status_line",
                      std::string(raw.substr(0, line_end)));
  }

  // Scan the header block for Content-Length only; full validation
  // happens in parse_response once the frame is complete.
  std::optional<std::size_t> content_length;
  std::size_t line_start = line_end + 2;
  while (line_start < boundary + 2) {
    std::size_t next = raw.find("\r\n", line_start);
    if (next == std::string_view::npos || next > boundary) next = boundary;
    const std::string line(raw.substr(line_start, next - line_start));
    std::string name, value;
    if (parse_header_line(line, &name, &value) && name == "content-length") {
      auto parsed = parse_content_length(value);
      if (!parsed.ok()) return parsed.error();
      content_length = parsed.value();
    }
    line_start = next + 2;
  }
  if (!content_length.has_value()) {
    return make_error("http.missing_content_length",
                      "pipelined responses cannot be framed to EOF");
  }

  ResponseFrame frame;
  frame.total_bytes = boundary + 4 + *content_length;
  frame.complete = raw.size() >= frame.total_bytes;
  return frame;
}

bool wants_close(const std::map<std::string, std::string>& headers) {
  const auto it = headers.find("connection");
  return it != headers.end() && to_lower(it->second) == "close";
}

Bytes HttpResponse::encode() const {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\n";
  for (const auto& [name, value] : headers) {
    if (name == "content-length") continue;
    head += name + ": " + value + "\r\n";
  }
  head += "content-length: " + std::to_string(body.size()) + "\r\n\r\n";
  Bytes out = to_bytes(head);
  append(out, body);
  return out;
}

Result<HttpResponse> parse_response(BytesView raw) {
  // Find the header/body boundary.
  const std::string text(raw.begin(), raw.end());
  const std::size_t boundary = text.find("\r\n\r\n");
  if (boundary == std::string::npos) {
    return make_error("http.truncated", "no header terminator");
  }
  if (boundary + 4 > kMaxHeaderBytes) {
    return make_error("http.headers_too_large",
                      std::to_string(boundary + 4) + " bytes");
  }

  HttpResponse resp;
  const std::size_t line_end = text.find("\r\n");
  std::string status_line = text.substr(0, line_end);
  const std::vector<std::string> parts = split(status_line, ' ');
  if (parts.size() < 2 || !starts_with(parts[0], "HTTP/1.")) {
    return make_error("http.bad_status_line", status_line);
  }
  try {
    resp.status = std::stoi(parts[1]);
  } catch (const std::exception&) {
    return make_error("http.bad_status_code", parts[1]);
  }
  resp.reason = parts.size() > 2 ? parts[2] : "";
  for (std::size_t i = 3; i < parts.size(); ++i) resp.reason += " " + parts[i];

  const std::string header_text =
      boundary > line_end + 2
          ? text.substr(line_end + 2, boundary - line_end - 2)
          : std::string();
  auto headers = parse_header_block(header_text);
  if (!headers.ok()) return headers.error();
  resp.headers = std::move(headers.value());

  std::optional<std::size_t> content_length;
  if (auto it = resp.headers.find("content-length");
      it != resp.headers.end()) {
    auto parsed = parse_content_length(it->second);
    if (!parsed.ok()) return parsed.error();
    content_length = parsed.value();
  }

  const std::size_t body_start = boundary + 4;
  const std::size_t available = raw.size() - body_start;
  if (!content_length.has_value()) content_length = available;
  if (*content_length > available) {
    return make_error("http.truncated", "body shorter than content-length");
  }
  resp.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(body_start),
                   raw.begin() + static_cast<std::ptrdiff_t>(body_start +
                                                             *content_length));
  return resp;
}

HttpResponse http_ok(Bytes body, const std::string& content_type) {
  HttpResponse resp;
  resp.headers["content-type"] = content_type;
  resp.body = std::move(body);
  return resp;
}

HttpResponse http_not_found() {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.headers["content-type"] = "text/plain";
  resp.body = to_bytes("no such certificate\n");
  return resp;
}

}  // namespace chainchaos::net
